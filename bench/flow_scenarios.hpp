#pragma once

/// \file flow_scenarios.hpp
/// Workload generators shared by the perf benches and the cluster tests.
/// Single source of truth on purpose: the serial-parity baseline in
/// BENCH_cluster.json claims the cluster path replays *exactly* the event
/// stream of perf_flownet's 100k tier, and the storage livelock regression
/// test (tests/platform_cluster_test.cpp) claims to pin *exactly* the
/// campaign perf_cluster's storage tier livelocked on. Both claims hold
/// only while every party compiles the same generator — so they all
/// include this header instead of keeping copies.

#include <cstdint>
#include <vector>

#include "net/flow_net.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"

namespace calciom::scenarios {

/// One worker pinned to a resource cluster, running back-to-back transfers.
struct WorkerPlan {
  std::uint32_t app = 0;
  std::size_t link = 0;    // resource index
  std::size_t server = 0;  // resource index
  double startDelay = 0.0;
  std::vector<double> bytes;
  std::vector<double> weight;
  std::vector<double> rateCap;
};

/// C resource-clusters of {server, link, link} plus the worker plans.
struct FlowScenario {
  std::vector<double> capacities;  // in resource-id order
  std::vector<WorkerPlan> workers;
};

/// The fleet-scale shape both perf benches measure: `flows` workers
/// pinned round-robin to `clusters` disjoint {server, 2×link} groups, each
/// running `flowsPerWorker` transfers. Deterministic in `seed`.
inline FlowScenario makeClusteredScenario(std::uint64_t seed, int clusters,
                                          int flows, int flowsPerWorker) {
  sim::Xoshiro256 rng(seed);
  FlowScenario sc;
  for (int c = 0; c < clusters; ++c) {
    sc.capacities.push_back(rng.uniform(80e6, 160e6));   // server
    sc.capacities.push_back(rng.uniform(100e6, 300e6));  // link 0
    sc.capacities.push_back(rng.uniform(100e6, 300e6));  // link 1
  }
  for (int w = 0; w < flows; ++w) {
    WorkerPlan plan;
    const int cluster = w % clusters;
    plan.app = static_cast<std::uint32_t>(w);
    plan.server = static_cast<std::size_t>(3 * cluster);
    plan.link = static_cast<std::size_t>(
        3 * cluster + 1 + static_cast<int>(rng.uniformInt(0, 1)));
    plan.startDelay = rng.uniform(0.0, 2.0);
    for (int i = 0; i < flowsPerWorker; ++i) {
      plan.bytes.push_back(rng.uniform(5e6, 80e6));
      plan.weight.push_back(rng.uniform(1.0, 16.0));
      plan.rateCap.push_back(rng.uniform01() < 0.2
                                 ? rng.uniform(5e6, 60e6)
                                 : net::kUnlimited);
    }
    sc.workers.push_back(std::move(plan));
  }
  return sc;
}

/// Executes a WorkerPlan against any allocator with the FlowNet interface
/// (the incremental FlowNet or the reference oracle).
template <class Net>
sim::Task flowWorker(Net& net, const WorkerPlan& plan,
                     const std::vector<net::ResourceId>& res) {
  co_await sim::Delay{plan.startDelay};
  for (std::size_t i = 0; i < plan.bytes.size(); ++i) {
    net::FlowSpec spec;
    spec.bytes = plan.bytes[i];
    spec.path = {res[plan.link], res[plan.server]};
    spec.weight = plan.weight[i];
    spec.rateCap = plan.rateCap[i];
    spec.group = plan.app;
    const net::FlowId id = net.start(std::move(spec));
    co_await net.completion(id);
  }
}

/// Periodic checkpoint-style writer: bursts start at aligned period
/// boundaries (thousands of writers share the identical timestamp — the
/// completion-storm shape batched dispatch amortizes), sizes drawn from the
/// *engine's* shard-local stream so campaigns stay a pure function of the
/// shard.
inline sim::Task burstWriter(sim::Engine& eng, net::FlowNet& net,
                             net::ResourceId ingress, std::uint32_t app,
                             int periods, double periodSeconds) {
  for (int p = 0; p < periods; ++p) {
    co_await sim::Delay{periodSeconds * p - eng.now()};
    net::FlowSpec spec;
    spec.bytes = eng.rng().uniform(32e6, 96e6);
    spec.path = {ingress};
    spec.weight = 4.0;
    spec.group = app;
    const net::FlowId id = net.start(std::move(spec));
    co_await net.completion(id);
  }
}

}  // namespace calciom::scenarios
