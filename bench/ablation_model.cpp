// Ablation study: which modelling ingredients carry which paper result?
// Each ablation disables one mechanism and shows the corresponding figure's
// signature effect vanish:
//
//   1. I/O-forwarding caps off  -> Fig 7(b)'s "lower than expected"
//      interference becomes the full 2x.
//   2. Locality penalty off     -> Fig 4's aggregate-throughput loss under
//      interference disappears (sharing becomes conservative).
//   3. Write-back cache off     -> Fig 3's throughput cliff disappears
//      (every iteration runs at sustained disk speed).
//   4. Queue-backlog penalty off-> Fig 2's first-comer advantage vanishes
//      (pure fluid sharing is symmetric in elapsed time).

#include <algorithm>
#include <iostream>

#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

namespace {

using namespace calciom;

double interferenceSlowdownAtDtZero(const platform::MachineSpec& machine,
                                    int procs, std::uint64_t bytesPerProc) {
  workload::IorConfig app{.name = "X",
                          .processes = procs,
                          .pattern = io::contiguousPattern(bytesPerProc)};
  const double alone =
      analysis::runAlone(machine, app).totalIoSeconds();
  analysis::ScenarioConfig cfg;
  cfg.machine = machine;
  cfg.policy = core::PolicyKind::Interfere;
  cfg.appA = app;
  cfg.appB = app;
  cfg.appB.name = "Y";
  const analysis::PairResult r = analysis::runPair(cfg);
  return r.a.totalIoSeconds() / alone;
}

}  // namespace

int main() {
  benchutil::header("Ablations",
                    "Which model ingredient carries which paper effect",
                    "each row disables one mechanism and re-runs the "
                    "affected experiment");
  benchutil::ShapeCheck check;
  analysis::TextTable table({"ablation", "with mechanism", "without"});

  // ---- 1. ION caps and Fig 7(b) -----------------------------------------
  {
    platform::MachineSpec with = platform::surveyor();
    platform::MachineSpec without = platform::surveyor();
    without.coresPerIon = 0;  // no forwarding layer: clients are unbounded
    const double slowWith =
        interferenceSlowdownAtDtZero(with, 1024, 32 << 20);
    const double slowWithout =
        interferenceSlowdownAtDtZero(without, 1024, 32 << 20);
    table.addRow({"ION caps (Fig 7b slowdown @dt=0)",
                  analysis::fmt(slowWith, 2) + "x",
                  analysis::fmt(slowWithout, 2) + "x"});
    check.expect("with ION caps, 1024-core interference is mild (<1.75x)",
                 slowWith < 1.75);
    check.expect("without them, interference returns to ~2x",
                 slowWithout > 1.9);
  }

  // ---- 2. Locality penalty and Fig 4 -------------------------------------
  {
    platform::MachineSpec with = platform::grid5000Nancy();
    platform::MachineSpec without = platform::grid5000Nancy();
    without.fs.server.localityAlpha = 0.0;
    auto aggregate = [&](const platform::MachineSpec& m) {
      analysis::ScenarioConfig cfg;
      cfg.machine = m;
      cfg.policy = core::PolicyKind::Interfere;
      cfg.appA = workload::IorConfig{
          .name = "A", .processes = 336,
          .pattern = io::contiguousPattern(16 << 20)};
      cfg.appB = cfg.appA;
      cfg.appB.name = "B";
      const analysis::PairResult r = analysis::runPair(cfg);
      return r.bytesDelivered / r.spanSeconds;
    };
    const double aggWith = aggregate(with);
    const double aggWithout = aggregate(without);
    table.addRow({"locality loss (Fig 4 aggregate)",
                  analysis::fmtRate(aggWith), analysis::fmtRate(aggWithout)});
    check.expect("interleaving penalty costs aggregate throughput",
                 aggWith < 0.95 * aggWithout);
  }

  // ---- 3. Write-back cache and Fig 3 -------------------------------------
  {
    platform::MachineSpec with = platform::grid5000Nancy(/*withCache=*/true);
    with.fs.server.cacheBytes = 64e6;
    const platform::MachineSpec without = platform::grid5000Nancy(false);
    auto burstThroughput = [&](const platform::MachineSpec& m) {
      const workload::IorConfig app{
          .name = "A", .processes = 336,
          .pattern = io::contiguousPattern(8 << 20), .iterations = 3,
          .computeSeconds = 10.0};
      const auto stats = analysis::runAlone(m, app);
      return analysis::mean(stats.iterationThroughputs());
    };
    const double tWith = burstThroughput(with);
    const double tWithout = burstThroughput(without);
    table.addRow({"write-back cache (Fig 3 burst rate)",
                  analysis::fmtRate(tWith), analysis::fmtRate(tWithout)});
    check.expect("the cache absorbs periodic bursts far above disk speed",
                 tWith > 2.5 * tWithout);
  }

  // ---- 4. Queue-backlog penalty and Fig 2 --------------------------------
  {
    platform::MachineSpec with = platform::grid5000Nancy();
    platform::MachineSpec without = platform::grid5000Nancy();
    without.fs.queuePenaltySeconds = 0.0;
    auto asymmetry = [&](const platform::MachineSpec& m) {
      analysis::ScenarioConfig cfg;
      cfg.machine = m;
      cfg.policy = core::PolicyKind::Interfere;
      cfg.appA = workload::IorConfig{
          .name = "A", .processes = 336,
          .pattern = io::contiguousPattern(16 << 20)};
      cfg.appB = cfg.appA;
      cfg.appB.name = "B";
      cfg.dt = 3.0;
      const analysis::PairResult r = analysis::runPair(cfg);
      return r.b.totalIoSeconds() - r.a.totalIoSeconds();
    };
    const double asymWith = asymmetry(with);
    const double asymWithout = asymmetry(without);
    table.addRow({"queue backlog (Fig 2 B-A gap @dt=3)",
                  analysis::fmt(asymWith, 2) + "s",
                  analysis::fmt(asymWithout, 2) + "s"});
    check.expect("the backlog penalty produces the first-comer advantage",
                 asymWith > asymWithout + 0.3);
    check.expect("without it, fluid sharing is symmetric (gap ~ 0)",
                 std::abs(asymWithout) < 0.3);
  }

  std::cout << table.str() << '\n';
  return check.finish();
}
