// Figure 9: the three static policies (interfering, FCFS serialization,
// interruption) compared on asymmetric (744/24) and symmetric (384/384)
// splits. The paper's conclusion: FCFS is terrible for a small app arriving
// second; interruption rescues it at negligible cost to the big app -- but
// interruption is counterproductive between equal apps.

#include <algorithm>
#include <iostream>
#include <map>

#include "analysis/delta.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

namespace {

using namespace calciom;

analysis::ScenarioConfig makeConfig(int coresA, int coresB,
                                    core::PolicyKind policy) {
  analysis::ScenarioConfig cfg;
  cfg.machine = platform::grid5000Rennes();
  cfg.policy = policy;
  cfg.appA = workload::IorConfig{.name = "A",
                                 .processes = coresA,
                                 .pattern = io::stridedPattern(1 << 20, 8)};
  cfg.appB = workload::IorConfig{.name = "B",
                                 .processes = coresB,
                                 .pattern = io::stridedPattern(1 << 20, 8)};
  return cfg;
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 9(a-d)", "Interfering vs FCFS vs interruption",
      "g5k-rennes: 8 MB/proc strided; splits 744/24 and 384/384; "
      "round-granularity interruption in the ADIO layer");

  const auto dts = analysis::linspace(-10.0, 25.0, 8);
  const core::PolicyKind kinds[] = {core::PolicyKind::Interfere,
                                    core::PolicyKind::Fcfs,
                                    core::PolicyKind::Interrupt};
  benchutil::ShapeCheck check;

  for (const auto& [coresA, coresB] :
       std::vector<std::pair<int, int>>{{744, 24}, {384, 384}}) {
    std::map<core::PolicyKind, analysis::DeltaGraph> graphs;
    for (core::PolicyKind k : kinds) {
      graphs.emplace(k,
                     analysis::sweepDelta(makeConfig(coresA, coresB, k), dts));
    }
    for (const char* which : {"A", "B"}) {
      analysis::TextTable table({"dt (s)", "interfering", "fcfs",
                                 "interruption"});
      for (std::size_t i = 0; i < dts.size(); ++i) {
        std::vector<std::string> row = {analysis::fmt(dts[i], 0)};
        for (core::PolicyKind k : kinds) {
          const auto& p = graphs.at(k).points[i];
          row.push_back(
              analysis::fmt(which[0] == 'A' ? p.factorA : p.factorB, 2));
        }
        table.addRow(row);
      }
      std::cout << "Fig 9 -- interference factor of app " << which << " ("
                << (which[0] == 'A' ? coresA : coresB) << " cores, split "
                << coresA << "/" << coresB << ")\n"
                << table.str() << '\n';
    }

    auto maxFactor = [&](core::PolicyKind k, bool ofB, double dtMin) {
      double peak = 0.0;
      for (const auto& p : graphs.at(k).points) {
        if (p.dt >= dtMin) {
          peak = std::max(peak, ofB ? p.factorB : p.factorA);
        }
      }
      return peak;
    };

    if (coresB == 24) {
      // Asymmetric: FCFS is very bad for small B arriving second (Fig 9b);
      // interruption rescues it (curve hugging 1) at tiny cost for A.
      check.expect("744/24: FCFS leaves small B with a huge factor",
                   maxFactor(core::PolicyKind::Fcfs, true, 0.0) > 5.0);
      check.expect("744/24: interruption rescues small B (factor < 2.5)",
                   maxFactor(core::PolicyKind::Interrupt, true, 0.0) < 2.5);
      check.expect("744/24: interruption costs big A almost nothing",
                   maxFactor(core::PolicyKind::Interrupt, false, 0.0) < 1.25);
      check.expect("744/24: interfering also crushes B",
                   maxFactor(core::PolicyKind::Interfere, true, 0.0) > 5.0);
    } else {
      // Symmetric: interruption hurts A as much as interference would have
      // hurt B (Fig 9c), FCFS protects A completely.
      check.expect("384/384: interruption is counterproductive for A",
                   maxFactor(core::PolicyKind::Interrupt, false, 0.5) > 1.5);
      check.expect("384/384: FCFS keeps A unimpacted",
                   maxFactor(core::PolicyKind::Fcfs, false, 0.5) < 1.1);
      check.expect("384/384: interfering slows both to ~2x",
                   maxFactor(core::PolicyKind::Interfere, false, 0.0) > 1.6);
    }
  }
  return check.finish();
}
