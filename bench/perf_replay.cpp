// Benchmark of the full-slice online replay harness (analysis/replay.hpp):
// an IntrepidModel month streamed through the live coordination layer on
// both transports, validated against the offline bare-core oracle.
//
// Tiers, all JSON on stdout (committed baseline: BENCH_replay.json):
//
//  * session_month — the month through per-job calciom::Sessions against
//    the same-engine Arbiter, once per policy (FCFS / interruption /
//    dynamic). The run FAILS unless the decision-divergence report against
//    the offline oracle is *exactly zero* — the PR 3 core/transport
//    guarantee, held over ~14k jobs and ~5M simulated seconds — and unless
//    the month replays at interactive speed (sim_speedup =
//    simulated-seconds per wall-second >= 43200, i.e. a month in under a
//    minute of wall time; observed ~10^7).
//
//  * cluster_month — the same month through the GlobalArbiter of a
//    4+1-shard cluster (30 s sync horizon) per policy. Here divergence
//    against the zero-sampling oracle is the *measurement*: grant-time L1
//    drift per matched grant lands on the order of the sync horizon, and
//    the CPU-seconds-wasted delta prices the sampling. The dynamic-policy
//    tier re-runs at 2 workers and fails on any fingerprint divergence
//    (decision stream + grant schedule + divergence JSON).
//
// `--smoke` replays a short slice (2 days): the session path must be
// exactly zero-divergent and the cluster path bit-identical at 1 and 2
// workers — the CI tripwire for the replay harness.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "analysis/replay.hpp"
#include "bench/bench_util.hpp"
#include "calciom/policy.hpp"

namespace {

using calciom::core::PolicyKind;
using namespace calciom::analysis::replay;

class Fingerprint {
 public:
  void fold(std::uint64_t v) noexcept {
    h_ ^= v;
    h_ *= 0x100000001B3ULL;
  }
  void foldBits(double v) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    fold(bits);
  }
  void foldString(const std::string& s) noexcept {
    for (char c : s) {
      fold(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

/// Everything deterministic about a replay: the decision stream (time
/// bits, requester, accessor set, action, dynamic costs), the grant
/// schedule, the captured-event count and the divergence JSON.
std::uint64_t replayFingerprint(const ReplayResult& r) {
  Fingerprint fp;
  fp.fold(r.jobs);
  fp.fold(r.captured.size());
  for (const calciom::core::DecisionRecord& d : r.decisions) {
    fp.foldBits(d.time);
    fp.fold(d.requester);
    fp.fold(static_cast<std::uint64_t>(d.action));
    fp.fold(d.accessors.size());
    for (std::uint32_t a : d.accessors) {
      fp.fold(a);
    }
    for (const auto& c : d.costs) {
      fp.fold(static_cast<std::uint64_t>(c.action));
      fp.foldBits(c.metricCost);
    }
  }
  for (const calciom::core::GrantRecord& g : r.grants) {
    fp.foldBits(g.time);
    fp.fold(g.app);
    fp.fold(g.resume ? 1u : 0u);
  }
  fp.foldString(toJson(r.divergence));
  return fp.value();
}

struct TimedReplay {
  ReplayResult result;
  double wallSeconds = 0.0;
  double eventsPerSecond = 0.0;
  /// Simulated seconds replayed per wall second.
  double simSpeedup = 0.0;
};

template <class Fn>
TimedReplay timed(Fn&& run) {
  const auto t0 = std::chrono::steady_clock::now();
  TimedReplay out;
  out.result = run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
  if (out.wallSeconds > 0.0) {
    out.eventsPerSecond =
        static_cast<double>(out.result.engineEvents) / out.wallSeconds;
    out.simSpeedup = out.result.traceSpanSeconds / out.wallSeconds;
  }
  return out;
}

constexpr double kInteractiveSpeedup = 43200.0;  // a month in < 1 minute

const char* policyName(PolicyKind k) {
  return calciom::core::toString(k);
}

void printReplay(const char* indent, const TimedReplay& t, bool last) {
  const ReplayResult& r = t.result;
  // wall_s is the external timer around the whole replay (stream decode +
  // oracle + divergence included); cpu_s is time inside the event loops
  // only. Separate columns — see ClusterStats::cpuSeconds for why their
  // sum is meaningless.
  std::printf(
      "%s{\"jobs\": %llu, \"decisions\": %zu, \"grants\": %zu, "
      "\"captured_events\": %zu, \"engine_events\": %llu, "
      "\"sync_rounds\": %llu, \"peak_stream_buffered\": %zu,\n"
      "%s \"trace_span_s\": %.0f, \"wall_s\": %.6f, \"cpu_s\": %.6f, "
      "\"events_per_s\": %.0f, "
      "\"sim_speedup\": %.0f, \"fingerprint\": \"%016llx\",\n"
      "%s \"divergence\": %s}%s\n",
      indent, static_cast<unsigned long long>(r.jobs), r.decisions.size(),
      r.grants.size(), r.captured.size(),
      static_cast<unsigned long long>(r.engineEvents),
      static_cast<unsigned long long>(r.syncRounds), r.peakStreamBuffered,
      indent, r.traceSpanSeconds, t.wallSeconds, r.engineCpuSeconds,
      t.eventsPerSecond,
      t.simSpeedup,
      static_cast<unsigned long long>(replayFingerprint(r)), indent,
      toJson(r.divergence).c_str(), last ? "" : ",");
}

ReplayConfig monthConfig(PolicyKind policy) {
  ReplayConfig cfg;
  cfg.model.seed = 2014;  // the paper's year; any fixed seed does
  cfg.policy = policy;
  cfg.computeShards = 4;
  cfg.syncHorizonSeconds = 30.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  if (argc > 1) {
    if (argc == 2 && std::strcmp(argv[1], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke]\n"
                   "  --smoke  2-day slice; exit 1 unless the session path\n"
                   "           is exactly zero-divergent and the cluster\n"
                   "           path is bit-identical at 1/2 workers\n",
                   argv[0]);
      return 2;
    }
  }

  bool ok = true;
  benchutil::jsonHeader("perf_replay", smoke ? "smoke" : "full");

  if (smoke) {
    ReplayConfig cfg = monthConfig(PolicyKind::Dynamic);
    cfg.model.horizonSeconds = 3600.0 * 24 * 2;  // short slice
    const TimedReplay session = timed([&] { return replaySession(cfg); });
    ReplayConfig c1 = cfg;
    c1.workers = 1;
    const TimedReplay cluster1 = timed([&] { return replayCluster(c1); });
    ReplayConfig c2 = cfg;
    c2.workers = 2;
    const TimedReplay cluster2 = timed([&] { return replayCluster(c2); });
    std::printf("  \"smoke_session\":\n");
    printReplay("    ", session, false);
    std::printf("  \"smoke_cluster\": [\n");
    printReplay("    ", cluster1, false);
    printReplay("    ", cluster2, true);
    std::printf("  ]\n}\n");
    const std::uint64_t f1 = replayFingerprint(cluster1.result);
    const std::uint64_t f2 = replayFingerprint(cluster2.result);
    const bool sessionOk = session.result.divergence.exactlyZero() &&
                           !session.result.decisions.empty();
    const bool clusterOk =
        f1 == f2 && !cluster1.result.decisions.empty() &&
        toJson(cluster1.result.divergence) ==
            toJson(cluster2.result.divergence);
    std::fprintf(stderr,
                 "smoke_replay: session zero-divergence %s; cluster "
                 "fingerprints %016llx / %016llx -> %s\n",
                 sessionOk ? "OK" : "BROKEN",
                 static_cast<unsigned long long>(f1),
                 static_cast<unsigned long long>(f2),
                 clusterOk ? "OK" : "DETERMINISM REGRESSION");
    return sessionOk && clusterOk ? 0 : 1;
  }

  const PolicyKind policies[] = {PolicyKind::Fcfs, PolicyKind::Interrupt,
                                 PolicyKind::Dynamic};

  // --- session path: the month against the same-engine arbiter.
  std::printf("  \"session_month\": {\n");
  for (std::size_t i = 0; i < 3; ++i) {
    const TimedReplay t =
        timed([&] { return replaySession(monthConfig(policies[i])); });
    std::printf("    \"%s\":\n", policyName(policies[i]));
    printReplay("      ", t, i + 1 == 3);
    const bool zero = t.result.divergence.exactlyZero();
    const bool interactive = t.simSpeedup >= kInteractiveSpeedup;
    if (!zero) {
      std::fprintf(stderr, "session_month/%s: DIVERGED from the oracle\n",
                   policyName(policies[i]));
    }
    if (!interactive) {
      std::fprintf(stderr,
                   "session_month/%s: sim_speedup %.0f below the "
                   "interactive gate %.0f\n",
                   policyName(policies[i]), t.simSpeedup,
                   kInteractiveSpeedup);
    }
    ok = ok && zero && interactive && !t.result.decisions.empty();
  }
  std::printf("  },\n");

  // --- cluster path: the month through the GlobalArbiter, divergence vs
  // --- the zero-sampling oracle is the measurement.
  std::printf("  \"cluster_month\": {\n");
  for (std::size_t i = 0; i < 3; ++i) {
    const TimedReplay t =
        timed([&] { return replayCluster(monthConfig(policies[i])); });
    std::printf("    \"%s\":\n", policyName(policies[i]));
    printReplay("      ", t, false);
    const bool interactive = t.simSpeedup >= kInteractiveSpeedup;
    if (!interactive) {
      std::fprintf(stderr,
                   "cluster_month/%s: sim_speedup %.0f below the "
                   "interactive gate %.0f\n",
                   policyName(policies[i]), t.simSpeedup,
                   kInteractiveSpeedup);
    }
    // The cluster path samples at the sync horizon, so it must diverge
    // (a zero report here would mean the oracle saw the barrier times,
    // not the emission times) — and every oracle grant must find its
    // online counterpart app-by-app.
    const bool measured = !t.result.divergence.exactlyZero() &&
                          t.result.divergence.matchedGrants > 0;
    ok = ok && interactive && measured && !t.result.decisions.empty();
    if (policies[i] == PolicyKind::Dynamic) {
      ReplayConfig c2 = monthConfig(policies[i]);
      c2.workers = 2;
      const TimedReplay t2 = timed([&] { return replayCluster(c2); });
      std::printf("    \"%s_workers2\":\n", policyName(policies[i]));
      printReplay("      ", t2, true);
      const bool deterministic =
          replayFingerprint(t.result) == replayFingerprint(t2.result);
      if (!deterministic) {
        std::fprintf(stderr,
                     "cluster_month/%s: fingerprint diverged across "
                     "worker counts\n",
                     policyName(policies[i]));
      }
      ok = ok && deterministic;
    }
  }
  std::printf("  }\n}\n");
  return ok ? 0 : 1;
}
