// Microbenchmark of the incremental max–min allocator against the retained
// global-recompute reference (flow_net_reference.hpp).
//
// Topology: C independent storage clusters, each one server plus two
// application links; every flow crosses {link, server} of its cluster. This
// is the fleet-scale shape the incremental allocator is built for — many
// applications on mostly disjoint storage paths, interference local to a
// cluster — and matches the paper's scenarios multiplied out: each flow
// event should cost O(component), not O(machine).
//
// Output is JSON on stdout: per tier (1k / 10k / 100k concurrent flows),
// events processed, wall seconds and events/sec for both allocators, plus
// the engine's queue high-water mark. The reference allocator is measured
// under an event budget at 10k flows (a full run would take minutes and the
// per-event rate is what matters; the budgeted ramp-up phase *understates*
// the reference's steady-state cost, so the printed speedup is a lower
// bound) and skipped at 100k. `--smoke` runs the 1k tier only and exits
// non-zero if the speedup drops below 2x — the CI regression tripwire.
//
// The committed baseline lives in BENCH_flownet.json.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/flow_scenarios.hpp"
#include "net/flow_net.hpp"
#include "net/flow_net_reference.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace {

using calciom::net::FlowNet;
using calciom::net::ReferenceFlowNet;
using calciom::net::ResourceId;
using calciom::scenarios::flowWorker;
using calciom::scenarios::FlowScenario;
using calciom::scenarios::makeClusteredScenario;
using calciom::sim::Engine;

struct RunResult {
  std::uint64_t events = 0;
  double wallSeconds = 0.0;
  double eventsPerSecond = 0.0;
  std::size_t maxQueueDepth = 0;
  bool ranToCompletion = false;
};

/// Runs the scenario, measuring events/sec from `warmupTime` (simulated
/// seconds; by then every worker has started its first flow, so the window
/// sees full concurrency) until `eventBudget` further events have been
/// processed or the simulation drains. The warmup is excluded from timing.
template <class Net>
RunResult runScenario(const FlowScenario& sc, double warmupTime,
                      std::uint64_t eventBudget) {
  Engine eng;
  Net net(eng);
  std::vector<ResourceId> res;
  res.reserve(sc.capacities.size());
  for (double cap : sc.capacities) {
    res.push_back(net.addResource(cap));
  }
  for (const calciom::scenarios::WorkerPlan& plan : sc.workers) {
    eng.spawn(flowWorker(net, plan, res));
  }
  eng.runUntil(warmupTime);
  const std::uint64_t base = eng.processedEvents();
  const auto t0 = std::chrono::steady_clock::now();
  while (!eng.empty() && eng.processedEvents() - base < eventBudget) {
    eng.runUntil(eng.nextEventTime());
  }
  const auto t1 = std::chrono::steady_clock::now();
  RunResult out;
  out.events = eng.processedEvents() - base;
  out.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
  out.eventsPerSecond =
      out.wallSeconds > 0.0 ? static_cast<double>(out.events) / out.wallSeconds
                            : 0.0;
  out.maxQueueDepth = eng.stats().maxQueueDepth;
  out.ranToCompletion = eng.empty();
  return out;
}

void printRun(const char* key, const RunResult& r, bool last) {
  std::printf(
      "      \"%s\": {\"events\": %llu, \"wall_s\": %.6f, "
      "\"events_per_s\": %.0f, \"max_queue_depth\": %zu, "
      "\"complete\": %s}%s\n",
      key, static_cast<unsigned long long>(r.events), r.wallSeconds,
      r.eventsPerSecond, r.maxQueueDepth, r.ranToCompletion ? "true" : "false",
      last ? "" : ",");
}

struct Tier {
  int flows;
  int clusters;
  int flowsPerWorker;
  std::uint64_t referenceBudget;  // 0 = skip the reference allocator
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  if (argc > 1) {
    if (argc == 2 && std::strcmp(argv[1], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke]\n"
                   "  --smoke  1k-flow tier only, exit 1 on <2x speedup\n",
                   argv[0]);
      return 2;
    }
  }
  constexpr std::uint64_t kNoBudget = ~0ULL;

  // Workers start their first flow within the first 2.05 simulated seconds;
  // measuring from there sees the full advertised concurrency.
  constexpr double kWarmup = 2.05;

  std::vector<Tier> tiers;
  if (smoke) {
    tiers.push_back(Tier{1000, 64, 4, kNoBudget});
  } else {
    tiers.push_back(Tier{1000, 64, 4, kNoBudget});
    tiers.push_back(Tier{10000, 256, 2, 800});
    tiers.push_back(Tier{100000, 2048, 2, 0});
  }

  double smokeSpeedup = -1.0;
  benchutil::jsonHeader("perf_flownet", smoke ? "smoke" : "full");
  std::printf("  \"cases\": [\n");
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    const Tier& tier = tiers[t];
    const FlowScenario sc = makeClusteredScenario(0xCA1C10Full + t, tier.clusters,
                                     tier.flows, tier.flowsPerWorker);
    const RunResult inc = runScenario<FlowNet>(sc, kWarmup, kNoBudget);
    RunResult ref;
    const bool haveRef = tier.referenceBudget != 0;
    if (haveRef) {
      ref = runScenario<ReferenceFlowNet>(sc, kWarmup, tier.referenceBudget);
    }
    std::printf("    {\"flows\": %d, \"clusters\": %d, \"resources\": %zu,\n",
                tier.flows, tier.clusters, sc.capacities.size());
    printRun("incremental", inc, !haveRef);
    if (haveRef) {
      printRun("reference", ref, false);
      const double speedup = ref.eventsPerSecond > 0.0
                                 ? inc.eventsPerSecond / ref.eventsPerSecond
                                 : 0.0;
      std::printf("      \"speedup_events_per_s\": %.2f\n", speedup);
      if (tier.flows == 1000) {
        smokeSpeedup = speedup;
      }
    }
    std::printf("    }%s\n", t + 1 < tiers.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  if (smoke) {
    const bool ok = smokeSpeedup >= 2.0;
    std::fprintf(stderr,
                 "smoke: incremental/reference speedup %.2fx (threshold 2x) "
                 "-> %s\n",
                 smokeSpeedup, ok ? "OK" : "REGRESSION");
    return ok ? 0 : 1;
  }
  return 0;
}
