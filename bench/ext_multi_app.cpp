// Extension bench: scaling beyond two applications (paper §III-A notes the
// strategies "naturally extend"; §VI leaves the study to future work
// because delta-graphs of >2 apps are hard to display). We sweep the
// number of concurrently arriving applications and report machine-wide
// metrics per policy: the adaptive queue keeps the worst interference
// factor bounded while uncoordinated interference degrades with crowd
// size.

#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/scenario.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

namespace {

using namespace calciom;

std::vector<workload::IorConfig> makeApps(int n) {
  // Mixed sizes, staggered arrivals 1.5s apart; everything fits the
  // 960-core Rennes machine.
  std::vector<workload::IorConfig> apps;
  const int sizes[] = {360, 192, 96, 48, 24, 120, 72, 48};
  for (int i = 0; i < n; ++i) {
    apps.push_back(workload::IorConfig{
        .name = "app" + std::to_string(i + 1),
        .processes = sizes[i % 8],
        .pattern = io::contiguousPattern(8 << 20),
        .startOffset = 1.5 * i});
  }
  return apps;
}

struct Row {
  double sumFactors = 0.0;
  double maxFactor = 0.0;
  double span = 0.0;
};

Row runPolicy(int n, core::PolicyKind policy,
              const std::vector<double>& alone) {
  analysis::ManyConfig cfg;
  cfg.machine = platform::grid5000Rennes();
  cfg.policy = policy;
  cfg.metric = std::make_shared<core::SumInterferenceFactors>();
  cfg.apps = makeApps(n);
  const analysis::ManyResult r = analysis::runMany(cfg);
  Row row;
  for (std::size_t i = 0; i < r.apps.size(); ++i) {
    const double factor = r.apps[i].totalIoSeconds() / alone[i];
    row.sumFactors += factor;
    row.maxFactor = std::max(row.maxFactor, factor);
  }
  row.span = r.spanSeconds;
  return row;
}

}  // namespace

int main() {
  benchutil::header(
      "Extension: N-application scaling",
      "Machine-wide interference vs number of concurrent applications",
      "g5k-rennes: N apps of mixed sizes arriving 1.5s apart, 8 MB/proc; "
      "metric = sum of interference factors");

  analysis::TextTable table({"N apps", "interfering sum(I)/max(I)",
                             "fcfs sum(I)/max(I)",
                             "calciom sum(I)/max(I)"});
  benchutil::ShapeCheck check;
  double interfere4Max = 0.0;
  double dynamic4Max = 0.0;
  for (int n : {2, 3, 4, 6, 8}) {
    std::vector<double> alone;
    for (const auto& app : makeApps(n)) {
      alone.push_back(analysis::runAlone(platform::grid5000Rennes(), app)
                          .totalIoSeconds());
    }
    const Row ri = runPolicy(n, core::PolicyKind::Interfere, alone);
    const Row rf = runPolicy(n, core::PolicyKind::Fcfs, alone);
    const Row rd = runPolicy(n, core::PolicyKind::Dynamic, alone);
    table.addRow({std::to_string(n),
                  analysis::fmt(ri.sumFactors, 1) + " / " +
                      analysis::fmt(ri.maxFactor, 1),
                  analysis::fmt(rf.sumFactors, 1) + " / " +
                      analysis::fmt(rf.maxFactor, 1),
                  analysis::fmt(rd.sumFactors, 1) + " / " +
                      analysis::fmt(rd.maxFactor, 1)});
    if (n == 4) {
      interfere4Max = ri.maxFactor;
      dynamic4Max = rd.maxFactor;
    }
    if (n >= 3) {
      check.expect("N=" + std::to_string(n) +
                       ": coordination beats interference on sum(I)",
                   rd.sumFactors < ri.sumFactors);
    }
  }
  std::cout << table.str() << '\n';

  check.expect("uncoordinated worst-case factor is large at N=4",
               interfere4Max > 4.0);
  check.expect("CALCioM bounds the worst factor at N=4",
               dynamic4Max < interfere4Max * 0.7);
  return check.finish();
}
