// Control-loop characterization of the barrier sampler (ROADMAP: close the
// feedback loop online) — the "Bode plot" of sync-horizon sampling plus the
// closed-loop auto-tuner, on the cluster transport of the full-slice replay
// harness (analysis/replay.hpp).
//
// Tiers, all JSON on stdout (committed baseline: BENCH_control.json):
//
//  * horizon_sweep — an Intrepid trace slice replayed through the
//    GlobalArbiter at a ladder of syncHorizonSeconds values (FCFS, so the
//    schedule is pure serialization and drift is purely sampling delay).
//    Per point: mean per-grant drift vs the zero-sampling oracle
//    (grant_time_l1_drift_s / matched_grants — the known ≈one-horizon
//    result), the wasted-core-seconds delta, and the deterministic barrier
//    cost (horizon_steps — total cluster rounds, each paying the vote
//    collection, hook firing and executor dispatch once; sync_rounds only
//    counts multi-shard rounds and is NOT monotone in the horizon). Shape
//    gates: drift grows monotonically and ~linearly with the horizon
//    (ratio within a 4x band of the horizon ratio) while the barrier cost
//    does NOT — it *falls* as the horizon grows (horizon_steps strictly
//    shrinking, >= 2x across the sweep). That asymmetry is the whole case
//    for tuning the horizon online.
//
//  * tuner — the same slice with calciom::HorizonTuner closing the loop
//    over the arbiter's sampling gate (grid pinned tight; the tuner
//    stretches the *sampling* horizon when decisions go quiet and snaps
//    back on churn). Gates: the controller actually engages (deferrals and
//    controller steps observed) and the run is bit-identical at 1/2/8
//    workers — every tuner input is barrier-time simulated state
//    (determinism rule 7, src/sim/README.md).
//
// `--smoke` runs a 3-point mini-sweep and the tuner at 1/2 workers on a
// shorter slice; same gates, CI-sized (wired into build-test, sanitizer and
// CALCIOM_SHARD_CHECKS legs of .github/workflows/ci.yml).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/replay.hpp"
#include "bench/bench_util.hpp"
#include "calciom/horizon_tuner.hpp"
#include "calciom/policy.hpp"

namespace {

using calciom::HorizonTunerConfig;
using calciom::core::PolicyKind;
using namespace calciom::analysis::replay;

class Fingerprint {
 public:
  void fold(std::uint64_t v) noexcept {
    h_ ^= v;
    h_ *= 0x100000001B3ULL;
  }
  void foldBits(double v) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    fold(bits);
  }
  void foldString(const std::string& s) noexcept {
    for (char c : s) {
      fold(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

/// Everything deterministic about a control-loop replay: the decision
/// stream, grant schedule and divergence JSON (as perf_replay folds them)
/// plus the tuner/gate telemetry — a horizon adjustment that moved at any
/// worker count but not another must flip this value.
std::uint64_t controlFingerprint(const ReplayResult& r) {
  Fingerprint fp;
  fp.fold(r.jobs);
  fp.fold(r.captured.size());
  for (const calciom::core::DecisionRecord& d : r.decisions) {
    fp.foldBits(d.time);
    fp.fold(d.requester);
    fp.fold(static_cast<std::uint64_t>(d.action));
    fp.fold(d.accessors.size());
    for (std::uint32_t a : d.accessors) {
      fp.fold(a);
    }
  }
  for (const calciom::core::GrantRecord& g : r.grants) {
    fp.foldBits(g.time);
    fp.fold(g.app);
    fp.fold(g.resume ? 1u : 0u);
  }
  fp.foldString(toJson(r.divergence));
  fp.foldBits(r.tunerHorizonSeconds);
  fp.fold(r.tunerShrinks);
  fp.fold(r.tunerGrows);
  fp.fold(r.mergeDeferrals);
  return fp.value();
}

struct TimedReplay {
  ReplayResult result;
  double wallSeconds = 0.0;
};

template <class Fn>
TimedReplay timed(Fn&& run) {
  const auto t0 = std::chrono::steady_clock::now();
  TimedReplay out;
  out.result = run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

ReplayConfig sliceConfig(double horizonSeconds, double sliceDays) {
  ReplayConfig cfg;
  cfg.model.seed = 2014;  // perf_replay's seed: same trace, same jobs
  cfg.model.horizonSeconds = 3600.0 * 24.0 * sliceDays;
  cfg.policy = PolicyKind::Fcfs;
  cfg.computeShards = 4;
  cfg.syncHorizonSeconds = horizonSeconds;
  return cfg;
}

struct SweepPoint {
  double horizon = 0.0;
  double meanDriftSeconds = 0.0;  // L1 drift / matched grants
  double maxDriftSeconds = 0.0;
  double cpuSecondsWaitedDelta = 0.0;
  std::uint64_t syncRounds = 0;
  std::uint64_t horizonSteps = 0;
  std::size_t matchedGrants = 0;
  std::size_t unmatchedGrants = 0;
  std::uint64_t fingerprint = 0;
  double wallSeconds = 0.0;
  double engineCpuSeconds = 0.0;
};

SweepPoint sweepAt(double horizon, double sliceDays) {
  const TimedReplay t =
      timed([&] { return replayCluster(sliceConfig(horizon, sliceDays)); });
  const ReplayResult& r = t.result;
  SweepPoint p;
  p.horizon = horizon;
  p.matchedGrants = r.divergence.matchedGrants;
  p.unmatchedGrants = r.divergence.unmatchedGrants;
  if (p.matchedGrants > 0) {
    p.meanDriftSeconds = r.divergence.grantTimeL1DriftSeconds /
                         static_cast<double>(p.matchedGrants);
  }
  p.maxDriftSeconds = r.divergence.grantTimeMaxDriftSeconds;
  p.cpuSecondsWaitedDelta = r.divergence.cpuSecondsWaitedDelta;
  p.syncRounds = r.syncRounds;
  p.horizonSteps = r.horizonSteps;
  p.fingerprint = controlFingerprint(r);
  p.wallSeconds = t.wallSeconds;
  p.engineCpuSeconds = r.engineCpuSeconds;
  return p;
}

void printPoint(const SweepPoint& p, bool last) {
  std::printf(
      "    {\"horizon_s\": %g, \"mean_drift_s\": %.6f, \"max_drift_s\": "
      "%.6f, \"drift_per_horizon\": %.4f, \"cpu_seconds_waited_delta\": "
      "%.6g, \"sync_rounds\": %llu, \"horizon_steps\": %llu, "
      "\"matched_grants\": %zu, "
      "\"unmatched_grants\": %zu, \"wall_s\": %.6f, \"cpu_s\": %.6f, "
      "\"fingerprint\": \"%016llx\"}%s\n",
      p.horizon, p.meanDriftSeconds, p.maxDriftSeconds,
      p.horizon > 0.0 ? p.meanDriftSeconds / p.horizon : 0.0,
      p.cpuSecondsWaitedDelta, static_cast<unsigned long long>(p.syncRounds),
      static_cast<unsigned long long>(p.horizonSteps), p.matchedGrants, p.unmatchedGrants, p.wallSeconds, p.engineCpuSeconds,
      static_cast<unsigned long long>(p.fingerprint), last ? "" : ",");
}

void printTunerRun(const TimedReplay& t, unsigned workers, bool last) {
  const ReplayResult& r = t.result;
  std::printf(
      "    {\"workers\": %u, \"decisions\": %zu, \"grants\": %zu, "
      "\"sync_rounds\": %llu, \"merge_deferrals\": %llu, "
      "\"tuner_horizon_s\": %g, \"tuner_shrinks\": %llu, "
      "\"tuner_grows\": %llu, \"mean_drift_s\": %.6f, \"wall_s\": %.6f, "
      "\"fingerprint\": \"%016llx\"}%s\n",
      workers, r.decisions.size(), r.grants.size(),
      static_cast<unsigned long long>(r.syncRounds),
      static_cast<unsigned long long>(r.mergeDeferrals),
      r.tunerHorizonSeconds,
      static_cast<unsigned long long>(r.tunerShrinks),
      static_cast<unsigned long long>(r.tunerGrows),
      r.divergence.matchedGrants > 0
          ? r.divergence.grantTimeL1DriftSeconds /
                static_cast<double>(r.divergence.matchedGrants)
          : 0.0,
      t.wallSeconds, static_cast<unsigned long long>(controlFingerprint(r)),
      last ? "" : ",");
}

/// The shape gates. Drift must grow monotonically and ~linearly with the
/// horizon; the barrier cost must do the opposite (strictly fewer sync
/// rounds as the horizon widens, at least 2x across the sweep). Verdicts
/// go to stderr; the returned flag is the process exit gate.
bool checkSweepShape(const std::vector<SweepPoint>& pts) {
  bool ok = true;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].meanDriftSeconds < pts[i - 1].meanDriftSeconds) {
      std::fprintf(stderr,
                   "horizon_sweep: mean drift NOT monotone (%.3f s at h=%g "
                   "< %.3f s at h=%g)\n",
                   pts[i].meanDriftSeconds, pts[i].horizon,
                   pts[i - 1].meanDriftSeconds, pts[i - 1].horizon);
      ok = false;
    }
    if (pts[i].horizonSteps >= pts[i - 1].horizonSteps) {
      std::fprintf(stderr,
                   "horizon_sweep: horizon_steps NOT decreasing (%llu at "
                   "h=%g >= %llu at h=%g)\n",
                   static_cast<unsigned long long>(pts[i].horizonSteps),
                   pts[i].horizon,
                   static_cast<unsigned long long>(pts[i - 1].horizonSteps),
                   pts[i - 1].horizon);
      ok = false;
    }
  }
  const SweepPoint& lo = pts.front();
  const SweepPoint& hi = pts.back();
  const double hRatio = hi.horizon / lo.horizon;
  const double driftRatio =
      lo.meanDriftSeconds > 0.0 ? hi.meanDriftSeconds / lo.meanDriftSeconds
                                : 0.0;
  // ~Linear: the drift ratio tracks the horizon ratio within a 4x band.
  if (driftRatio < hRatio / 4.0 || driftRatio > hRatio * 4.0) {
    std::fprintf(stderr,
                 "horizon_sweep: drift ratio %.2f outside the linear band "
                 "[%.2f, %.2f] for horizon ratio %.0f\n",
                 driftRatio, hRatio / 4.0, hRatio * 4.0, hRatio);
    ok = false;
  }
  // Sublinear cost: barrier work shrinks (>= 2x) while drift grows.
  if (hi.horizonSteps * 2 > lo.horizonSteps) {
    std::fprintf(stderr,
                 "horizon_sweep: horizon_steps only fell %llu -> %llu "
                 "(< 2x) across a %.0fx horizon ratio\n",
                 static_cast<unsigned long long>(lo.horizonSteps),
                 static_cast<unsigned long long>(hi.horizonSteps), hRatio);
    ok = false;
  }
  std::fprintf(stderr,
               "horizon_sweep: drift %.3f..%.3f s (ratio %.2f vs horizon "
               "ratio %.0f), horizon_steps %llu..%llu -> %s\n",
               lo.meanDriftSeconds, hi.meanDriftSeconds, driftRatio, hRatio,
               static_cast<unsigned long long>(lo.horizonSteps),
               static_cast<unsigned long long>(hi.horizonSteps),
               ok ? "OK" : "SHAPE BROKEN");
  return ok;
}

ReplayConfig tunerConfig(double sliceDays) {
  // Tight grid so the tuner has headroom: it inherits the 5 s grid as its
  // floor and may stretch the arbiter's *sampling* horizon up to 80 s
  // during quiet stretches, snapping back when decisions churn.
  ReplayConfig cfg = sliceConfig(5.0, sliceDays);
  HorizonTunerConfig t;
  t.maxHorizonSeconds = 80.0;
  cfg.tuner = t;
  return cfg;
}

/// Tuner tier: the loop must actually close (deferrals + controller steps
/// observed) and be bit-identical across worker counts.
bool checkTunerRuns(const std::vector<TimedReplay>& runs,
                    const std::vector<unsigned>& workers) {
  bool ok = true;
  const std::uint64_t f0 = controlFingerprint(runs.front().result);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (controlFingerprint(runs[i].result) != f0) {
      std::fprintf(stderr,
                   "tuner: fingerprint diverged at %u workers "
                   "(determinism rule 7 violation)\n",
                   workers[i]);
      ok = false;
    }
  }
  const ReplayResult& r = runs.front().result;
  if (r.mergeDeferrals == 0 || r.tunerGrows + r.tunerShrinks == 0) {
    std::fprintf(stderr,
                 "tuner: loop never engaged (deferrals %llu, steps %llu)\n",
                 static_cast<unsigned long long>(r.mergeDeferrals),
                 static_cast<unsigned long long>(r.tunerGrows +
                                                 r.tunerShrinks));
    ok = false;
  }
  std::fprintf(stderr,
               "tuner: fingerprint %016llx at %zu worker counts, deferrals "
               "%llu, shrinks %llu, grows %llu, final horizon %g s -> %s\n",
               static_cast<unsigned long long>(f0), runs.size(),
               static_cast<unsigned long long>(r.mergeDeferrals),
               static_cast<unsigned long long>(r.tunerShrinks),
               static_cast<unsigned long long>(r.tunerGrows),
               r.tunerHorizonSeconds, ok ? "OK" : "BROKEN");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  if (argc > 1) {
    if (argc == 2 && std::strcmp(argv[1], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke]\n"
                   "  --smoke  3-point mini-sweep + tuner at 1/2 workers;\n"
                   "           exit 1 on a shape or determinism violation\n",
                   argv[0]);
      return 2;
    }
  }

  benchutil::jsonHeader("perf_control", smoke ? "smoke" : "full");

  const double sliceDays = smoke ? 2.0 : 4.0;
  const std::vector<double> horizons =
      smoke ? std::vector<double>{4.0, 16.0, 64.0}
            : std::vector<double>{2.0, 4.0, 8.0, 16.0, 32.0, 64.0};

  std::printf("  \"slice_days\": %g,\n", sliceDays);
  std::printf("  \"horizon_sweep\": [\n");
  std::vector<SweepPoint> pts;
  for (const double& h : horizons) {
    pts.push_back(sweepAt(h, sliceDays));
    printPoint(pts.back(), &h == &horizons.back());
  }
  std::printf("  ],\n");
  const bool sweepOk = checkSweepShape(pts);

  const std::vector<unsigned> workers =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 8};
  std::printf("  \"tuner\": [\n");
  std::vector<TimedReplay> runs;
  for (const unsigned& w : workers) {
    ReplayConfig cfg = tunerConfig(sliceDays);
    cfg.workers = w;
    runs.push_back(timed([&] { return replayCluster(cfg); }));
    printTunerRun(runs.back(), w, &w == &workers.back());
  }
  std::printf("  ]\n}\n");
  const bool tunerOk = checkTunerRuns(runs, workers);

  return sweepOk && tunerOk ? 0 : 1;
}
