// Figure 4: aggregate throughput when a small application B (8..336 cores)
// interferes with a big one A (336 cores), both starting at the same time.
// The paper reports a 6x throughput drop for B=8 relative to running alone
// and an aggregate below the no-interference level.

#include <iostream>
#include <vector>

#include "analysis/scenario.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

int main() {
  using namespace calciom;

  benchutil::header(
      "Figure 4", "Aggregate throughput vs size of the interfering app",
      "g5k-nancy: A = 336 procs, B in {8..336}, 16 MB/proc each, dt = 0");

  const platform::MachineSpec machine = platform::grid5000Nancy();
  const auto pattern = io::contiguousPattern(16 << 20);
  const workload::IorConfig appA{
      .name = "A", .processes = 336, .pattern = pattern};

  const workload::AppStats aloneA = analysis::runAlone(machine, appA);
  const double aloneAThroughput =
      static_cast<double>(aloneA.totalBytes()) / aloneA.totalIoSeconds();

  analysis::TextTable table({"B cores", "aggregate (MB/s)",
                             "A alone (MB/s)", "B alone (MB/s)",
                             "B with A (MB/s)", "B slowdown"});
  double slowdownAt8 = 0.0;
  double worstAggregate = 1e18;
  for (int cores : {8, 16, 32, 64, 128, 256, 336}) {
    const workload::IorConfig appB{
        .name = "B", .processes = cores, .pattern = pattern};
    const workload::AppStats aloneB = analysis::runAlone(machine, appB);
    const double aloneBThroughput =
        static_cast<double>(aloneB.totalBytes()) / aloneB.totalIoSeconds();

    analysis::ScenarioConfig cfg;
    cfg.machine = machine;
    cfg.policy = core::PolicyKind::Interfere;
    cfg.appA = appA;
    cfg.appB = appB;
    cfg.dt = 0.0;
    const analysis::PairResult pair = analysis::runPair(cfg);
    const double aggregate = pair.bytesDelivered / pair.spanSeconds;
    const double bThroughput =
        static_cast<double>(pair.b.totalBytes()) / pair.b.totalIoSeconds();
    const double slowdown = aloneBThroughput / bThroughput;
    if (cores == 8) {
      slowdownAt8 = slowdown;
    }
    worstAggregate = std::min(worstAggregate, aggregate);
    table.addRow({std::to_string(cores), analysis::fmt(aggregate / 1e6, 0),
                  analysis::fmt(aloneAThroughput / 1e6, 0),
                  analysis::fmt(aloneBThroughput / 1e6, 0),
                  analysis::fmt(bThroughput / 1e6, 0),
                  analysis::fmt(slowdown, 1) + "x"});
  }
  std::cout << table.str() << '\n';

  benchutil::ShapeCheck check;
  check.expect("B=8 sees a severe throughput drop (paper: ~6x)",
               slowdownAt8 > 3.5 && slowdownAt8 < 15.0);
  check.expect(
      "interference costs aggregate throughput (below the alone level)",
      worstAggregate < aloneAThroughput);
  check.expect("aggregate stays within physical limits",
               worstAggregate > 0.5 * aloneAThroughput);
  return check.finish();
}
