// Degradation curve of the chaos-hardened coordination stack (fault::Plan +
// fault::Injector + leases/heartbeats/degradation in the protocol), JSON on
// stdout (committed baseline: BENCH_faults.json).
//
// Full mode, three sweeps over the synthetic contended campaign of
// src/fault/chaos.hpp (hardened protocol, Fcfs policy unless noted):
//
//  * loss_sweep — message-loss probability in {0, 1, 5, 10, 20}%, both
//    transports. Records aggregate throughput (rounds / simulated second),
//    cpuSecondsWaited, lease reclaims, Inform retries observed as arbiter
//    decisions, and how many sessions fell back to uncoordinated I/O. The
//    paper's "graceful" claim, quantified: the gate fails the bench if
//    throughput at 10% loss drops below half of fault-free, if any run
//    fails to complete, or if a degraded session does not finish its I/O.
//
//  * crash_sweep — 0..3 of 4 applications crash mid-campaign (alternating
//    reported-to-the-scheduler and silent, so both the discard path and the
//    lease-expiry path are exercised). Gate: every surviving app completes
//    and the arbiter drains to Idle — a crash may slow the others down but
//    never wedges them.
//
//  * chaos_mix — a few chaosPlan() seeds (full drop/delay/duplicate/reorder
//    /blackout/crash mix) on the Cluster transport at 1 and 2 workers; the
//    fingerprints must agree pairwise (fault schedules are derived by pure
//    hashing, so determinism is worker-count invariant even mid-chaos).
//
//  * arbiter_crash_sweep — withArbiterCrash() on top of the chaos mix, both
//    transports: the arbiter dies mid-campaign and recovers from its last
//    checkpoint + WAL + session reconciliation. Gate: every crash is
//    followed by a completed restart, at least one checkpoint existed to
//    recover from, and the run still completes.
//
// Every run object carries the per-class injected-fault counters (drops /
// delays / duplicates / reorders / app crashes / arbiter crashes) so a
// baseline diff shows *what* the schedule actually did, not just the
// outcome.
//
// `--smoke` runs the CI tripwire: the zero-fault bit-identity gate (same
// campaign with the injector installed-but-disabled vs not installed at all
// must produce identical decision-stream/grant-log fingerprints, wait times
// and grant counts, on both transports) plus one fixed chaos seed that must
// terminate with all survivors complete, and the same seed again with an
// arbiter crash injected (crash-recovery liveness). Exits non-zero on any
// violation.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.hpp"
#include "calciom/policy.hpp"
#include "fault/chaos.hpp"
#include "fault/injector.hpp"

namespace {

using calciom::core::PolicyKind;
using calciom::fault::ChaosConfig;
using calciom::fault::ChaosResult;
using calciom::fault::chaosPlan;
using calciom::fault::ChaosTransport;
using calciom::fault::CrashSpec;
using calciom::fault::Plan;
using calciom::fault::runChaos;
using calciom::fault::withArbiterCrash;

/// The sweep campaign: enough apps and rounds that serialization, pauses
/// and retries all happen, small enough that a 5-point sweep is cheap.
ChaosConfig sweepConfig(ChaosTransport transport) {
  ChaosConfig cfg;
  cfg.transport = transport;
  cfg.policy = PolicyKind::Fcfs;
  cfg.apps = 4;
  cfg.phases = 3;
  cfg.roundsPerPhase = 4;
  cfg.roundSeconds = 0.4;
  cfg.startStaggerSeconds = 0.3;
  cfg.idleSeconds = 0.6;
  return cfg;
}

const char* transportName(ChaosTransport t) {
  return t == ChaosTransport::SameEngine ? "same_engine" : "cluster";
}

bool runCompleted(const ChaosResult& r) {
  return r.survivorsCompleted == r.survivors && r.arbiterIdle &&
         r.degradedAllCompleted;
}

/// Crash-recovery gate: every applied arbiter crash was followed by a
/// completed restart, and there was stable state to restart *from*.
bool recoveredCleanly(const ChaosResult& r) {
  return runCompleted(r) && r.arbiterCrashes >= 1 &&
         r.arbiterRestarts == r.arbiterCrashes && r.checkpoints >= 1;
}

/// One JSON object per run; `extra` is spliced in as the leading fields
/// (e.g. "\"loss\": 0.10, ") so sweep points stay a single flat object.
/// The per-class injected-fault counters come straight from the Injector
/// and the crash-recovery path, so the committed baseline records what
/// each seeded schedule actually inflicted.
void printChaosRun(const char* indent, const std::string& extra,
                   const ChaosResult& r, bool last) {
  // wall_s (external timer) and cpu_s (event-loop time) are the only
  // nondeterministic columns; cpu_s_waited is *simulated* core-seconds.
  std::printf(
      "%s{%s\"survivors\": %d, \"completed\": %d, \"degraded\": %d, "
      "\"rounds\": %llu, \"sim_s\": %.3f, \"wall_s\": %.6f, "
      "\"cpu_s\": %.6f, \"tput_rounds_per_s\": %.3f, "
      "\"cpu_s_waited\": %.3f, \"lease_reclaims\": %zu, "
      "\"msgs_seen\": %llu, \"msgs_dropped\": %llu, \"msgs_delayed\": %llu, "
      "\"msgs_duplicated\": %llu, \"msgs_reordered\": %llu, "
      "\"blackout_discarded\": %llu, \"app_crashes\": %llu, "
      "\"arbiter_crashes\": %llu, \"arbiter_restarts\": %llu, "
      "\"crash_discarded\": %llu, \"recover_cmds\": %llu, "
      "\"reinstated\": %llu, \"recover_answers\": %llu, "
      "\"stale_cmds\": %llu, \"checkpoints\": %llu, "
      "\"wal_appended\": %llu, \"wal_dropped\": %llu, "
      "\"fingerprint\": \"%016llx\", \"complete\": %s}%s\n",
      indent, extra.c_str(), r.survivors, r.survivorsCompleted,
      r.degradedSessions,
      static_cast<unsigned long long>(r.roundsCompleted), r.simSeconds,
      r.wallSeconds, r.engineCpuSeconds,
      r.throughputRoundsPerSecond, r.cpuSecondsWaited, r.leaseReclaims,
      static_cast<unsigned long long>(r.messagesSeen),
      static_cast<unsigned long long>(r.messagesDropped),
      static_cast<unsigned long long>(r.messagesDelayed),
      static_cast<unsigned long long>(r.messagesDuplicated),
      static_cast<unsigned long long>(r.messagesReordered),
      static_cast<unsigned long long>(r.blackoutDiscarded),
      static_cast<unsigned long long>(r.appCrashesInjected),
      static_cast<unsigned long long>(r.arbiterCrashes),
      static_cast<unsigned long long>(r.arbiterRestarts),
      static_cast<unsigned long long>(r.crashDiscarded),
      static_cast<unsigned long long>(r.recoverCommandsIssued),
      static_cast<unsigned long long>(r.reinstatedAccessors),
      static_cast<unsigned long long>(r.recoverAnswers),
      static_cast<unsigned long long>(r.staleArbiterCommands),
      static_cast<unsigned long long>(r.checkpoints),
      static_cast<unsigned long long>(r.walAppended),
      static_cast<unsigned long long>(r.walDropped),
      static_cast<unsigned long long>(r.fingerprint),
      runCompleted(r) ? "true" : "false", last ? "" : ",");
}

/// Zero-fault bit-identity on one transport: installed-but-disabled
/// injector vs no injector at all. Everything deterministic must agree.
bool zeroFaultGate(ChaosTransport transport) {
  ChaosConfig with = sweepConfig(transport);
  with.installInjector = true;  // Plan{} is disabled: a pure pass-through
  ChaosConfig without = with;
  without.installInjector = false;
  const ChaosResult a = runChaos(with);
  const ChaosResult b = runChaos(without);
  const bool ok = a.fingerprint == b.fingerprint && a.grants == b.grants &&
                  a.decisionCount == b.decisionCount &&
                  a.cpuSecondsWaited == b.cpuSecondsWaited &&
                  a.messagesDropped == 0 && runCompleted(a) &&
                  runCompleted(b);
  std::printf(
      "    {\"transport\": \"%s\", \"fingerprints\": [\"%016llx\", "
      "\"%016llx\"], \"grants\": [%zu, %zu], \"bit_identical\": %s}%s\n",
      transportName(transport), static_cast<unsigned long long>(a.fingerprint),
      static_cast<unsigned long long>(b.fingerprint), a.grants, b.grants,
      ok ? "true" : "false",
      transport == ChaosTransport::SameEngine ? "," : "");
  std::fprintf(stderr, "zero_fault[%s]: %016llx / %016llx -> %s\n",
               transportName(transport),
               static_cast<unsigned long long>(a.fingerprint),
               static_cast<unsigned long long>(b.fingerprint),
               ok ? "OK" : "BIT-IDENTITY REGRESSION");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  if (argc > 1) {
    if (argc == 2 && std::strcmp(argv[1], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke]\n"
                   "  --smoke  zero-fault bit-identity gate + one fixed\n"
                   "           chaos seed; exit 1 on any violation\n",
                   argv[0]);
      return 2;
    }
  }

  // The fixed seed every smoke run replays; full mode sweeps more.
  constexpr std::uint64_t kSmokeSeed = 0xC4A05011ull;

  bool ok = true;
  benchutil::jsonHeader("perf_faults", smoke ? "smoke" : "full", kSmokeSeed);

  if (smoke) {
    std::printf("  \"zero_fault_gate\": [\n");
    const bool zfSame = zeroFaultGate(ChaosTransport::SameEngine);
    const bool zfCluster = zeroFaultGate(ChaosTransport::Cluster);
    std::printf("  ],\n");
    // One fixed chaos seed on each transport: liveness + safety sanity.
    ChaosConfig cfg = sweepConfig(ChaosTransport::SameEngine);
    cfg.plan = chaosPlan(kSmokeSeed, cfg.apps);
    const ChaosResult same = runChaos(cfg);
    cfg = sweepConfig(ChaosTransport::Cluster);
    cfg.plan = chaosPlan(kSmokeSeed, cfg.apps);
    const ChaosResult clus = runChaos(cfg);
    std::printf("  \"chaos_seed\": {\n    \"seed\": %llu,\n    \"runs\": [\n",
                static_cast<unsigned long long>(kSmokeSeed));
    printChaosRun("      ", "\"transport\": \"same_engine\", ", same, false);
    printChaosRun("      ", "\"transport\": \"cluster\", ", clus, true);
    std::printf("    ]\n  },\n");
    const bool chaosOk = runCompleted(same) && runCompleted(clus);
    std::fprintf(stderr, "chaos_seed %llx: %s\n",
                 static_cast<unsigned long long>(kSmokeSeed),
                 chaosOk ? "OK" : "LIVENESS REGRESSION");
    // Same seed again, now with the arbiter itself dying mid-campaign:
    // crash-recovery liveness on both transports.
    cfg = sweepConfig(ChaosTransport::SameEngine);
    cfg.plan = withArbiterCrash(chaosPlan(kSmokeSeed, cfg.apps), kSmokeSeed);
    const ChaosResult crashSame = runChaos(cfg);
    cfg = sweepConfig(ChaosTransport::Cluster);
    cfg.plan = withArbiterCrash(chaosPlan(kSmokeSeed, cfg.apps), kSmokeSeed);
    const ChaosResult crashClus = runChaos(cfg);
    std::printf("  \"arbiter_crash_seed\": {\n    \"seed\": %llu,\n"
                "    \"runs\": [\n",
                static_cast<unsigned long long>(kSmokeSeed));
    printChaosRun("      ", "\"transport\": \"same_engine\", ", crashSame,
                  false);
    printChaosRun("      ", "\"transport\": \"cluster\", ", crashClus, true);
    const bool recoverOk =
        recoveredCleanly(crashSame) && recoveredCleanly(crashClus);
    std::printf("    ],\n    \"recovered\": %s\n  }\n}\n",
                recoverOk ? "true" : "false");
    std::fprintf(stderr, "arbiter_crash_seed %llx: %s\n",
                 static_cast<unsigned long long>(kSmokeSeed),
                 recoverOk ? "OK" : "RECOVERY REGRESSION");
    ok = zfSame && zfCluster && chaosOk && recoverOk;
    return ok ? 0 : 1;
  }

  // --- loss sweep: throughput and wasted CPU vs message-loss probability.
  const double lossPoints[] = {0.0, 0.01, 0.05, 0.10, 0.20};
  for (const ChaosTransport transport :
       {ChaosTransport::SameEngine, ChaosTransport::Cluster}) {
    std::printf("  \"loss_sweep_%s\": {\n    \"points\": [\n",
                transportName(transport));
    double tputFree = 0.0;
    double tputAt10 = 0.0;
    bool complete = true;
    for (std::size_t i = 0; i < 5; ++i) {
      ChaosConfig cfg = sweepConfig(transport);
      cfg.plan.seed = kSmokeSeed + i;
      cfg.plan.dropProbability = lossPoints[i];
      // A little delay jitter rides along so loss is not the only fault.
      cfg.plan.delayProbability = lossPoints[i] > 0.0 ? 0.1 : 0.0;
      cfg.plan.maxDelaySeconds = 0.25;
      const ChaosResult r = runChaos(cfg);
      char extra[32];
      std::snprintf(extra, sizeof extra, "\"loss\": %.2f, ", lossPoints[i]);
      printChaosRun("      ", extra, r, i + 1 == 5);
      if (lossPoints[i] == 0.0) {
        tputFree = r.throughputRoundsPerSecond;
      }
      if (lossPoints[i] == 0.10) {
        tputAt10 = r.throughputRoundsPerSecond;
      }
      complete = complete && runCompleted(r);
    }
    // The "graceful, no cliff-to-deadlock" gate: 10% loss costs at most
    // half the fault-free throughput, and everything still completes.
    const bool graceful = tputAt10 >= 0.5 * tputFree;
    std::printf("    ],\n    \"tput_free\": %.3f, \"tput_at_10pct\": %.3f,\n",
                tputFree, tputAt10);
    std::printf("    \"graceful\": %s, \"all_complete\": %s\n  },\n",
                graceful ? "true" : "false", complete ? "true" : "false");
    std::fprintf(stderr, "loss_sweep[%s]: tput %.3f -> %.3f @10%% loss -> %s\n",
                 transportName(transport), tputFree, tputAt10,
                 graceful && complete ? "OK" : "DEGRADATION CLIFF");
    ok = ok && graceful && complete;
  }

  // --- crash sweep: 0..3 of 4 apps die mid-campaign, reported / silent
  // --- alternating. Survivors must always finish; the arbiter must drain.
  {
    std::printf("  \"crash_sweep\": {\n    \"points\": [\n");
    bool complete = true;
    for (int crashes = 0; crashes <= 3; ++crashes) {
      ChaosConfig cfg = sweepConfig(ChaosTransport::SameEngine);
      cfg.plan.seed = kSmokeSeed ^ static_cast<std::uint64_t>(crashes);
      for (int c = 0; c < crashes; ++c) {
        // App ids are 1-based in the harness; stagger the deaths across
        // the campaign so crashes land in different protocol states.
        cfg.plan.crashes.push_back(
            CrashSpec{static_cast<std::uint32_t>(c + 1),
                      0.9 + 1.1 * static_cast<double>(c), c % 2 == 0});
      }
      const ChaosResult r = runChaos(cfg);
      char extra[32];
      std::snprintf(extra, sizeof extra, "\"crashes\": %d, ", crashes);
      printChaosRun("      ", extra, r, crashes == 3);
      complete = complete && runCompleted(r);
    }
    std::printf("    ],\n    \"all_survivors_complete\": %s\n  },\n",
                complete ? "true" : "false");
    std::fprintf(stderr, "crash_sweep: %s\n",
                 complete ? "OK" : "SURVIVOR STALLED");
    ok = ok && complete;
  }

  // --- chaos mix: full fault cocktail on the Cluster transport, worker-
  // --- count invariance of the decision-stream fingerprint under faults.
  {
    std::printf("  \"chaos_mix\": {\n    \"seeds\": [\n");
    bool deterministic = true;
    bool complete = true;
    const std::uint64_t seeds[] = {kSmokeSeed, kSmokeSeed + 17,
                                   kSmokeSeed + 34};
    for (std::size_t i = 0; i < 3; ++i) {
      ChaosConfig cfg = sweepConfig(ChaosTransport::Cluster);
      cfg.plan = chaosPlan(seeds[i], cfg.apps);
      cfg.workers = 1;
      const ChaosResult r1 = runChaos(cfg);
      cfg.workers = 2;
      const ChaosResult r2 = runChaos(cfg);
      const bool agree = r1.fingerprint == r2.fingerprint;
      char extra[96];
      std::snprintf(extra, sizeof extra,
                    "\"seed\": %llu, \"workers_agree\": %s, ",
                    static_cast<unsigned long long>(seeds[i]),
                    agree ? "true" : "false");
      printChaosRun("      ", extra, r1, i + 1 == 3);
      deterministic = deterministic && agree;
      complete = complete && runCompleted(r1) && runCompleted(r2);
    }
    std::printf("    ],\n    \"deterministic_across_workers\": %s, "
                "\"all_complete\": %s\n  },\n",
                deterministic ? "true" : "false",
                complete ? "true" : "false");
    std::fprintf(stderr, "chaos_mix: %s\n",
                 deterministic && complete ? "OK" : "DETERMINISM REGRESSION");
    ok = ok && deterministic && complete;
  }

  // --- arbiter crash sweep: the arbiter dies mid-campaign under the full
  // --- fault cocktail and must recover from checkpoint + WAL + session
  // --- reconciliation; every crash pairs with a completed restart.
  {
    std::printf("  \"arbiter_crash_sweep\": {\n    \"points\": [\n");
    bool recovered = true;
    const std::uint64_t seeds[] = {kSmokeSeed, kSmokeSeed + 5,
                                   kSmokeSeed + 23};
    std::size_t point = 0;
    for (const ChaosTransport transport :
         {ChaosTransport::SameEngine, ChaosTransport::Cluster}) {
      for (std::size_t i = 0; i < 3; ++i, ++point) {
        ChaosConfig cfg = sweepConfig(transport);
        cfg.plan = withArbiterCrash(chaosPlan(seeds[i], cfg.apps), seeds[i]);
        const ChaosResult r = runChaos(cfg);
        char extra[96];
        std::snprintf(extra, sizeof extra,
                      "\"transport\": \"%s\", \"seed\": %llu, ",
                      transportName(transport),
                      static_cast<unsigned long long>(seeds[i]));
        printChaosRun("      ", extra, r, point + 1 == 6);
        recovered = recovered && recoveredCleanly(r);
      }
    }
    std::printf("    ],\n    \"all_recovered\": %s\n  }\n",
                recovered ? "true" : "false");
    std::fprintf(stderr, "arbiter_crash_sweep: %s\n",
                 recovered ? "OK" : "RECOVERY REGRESSION");
    ok = ok && recovered;
  }

  std::printf("}\n");
  return ok ? 0 : 1;
}
