// Extension bench (paper Section VI, future work): "an interrupted
// application can reorganize some of its internal operations
// (communications, compression, data processing, etc.) while waiting for
// its I/O to be resumed in order to further gain time."
//
// We implement this as a compute credit: time an application spends paused
// (or waiting at boundaries) is used for work that would otherwise occupy
// the next compute phase. This bench quantifies the gain on an iterating
// big-writer interrupted by a small app each iteration.

#include <iostream>
#include <memory>

#include "analysis/scenario.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

namespace {

using namespace calciom;

analysis::PairResult runCase(bool reorganize) {
  analysis::ScenarioConfig cfg;
  cfg.machine = platform::grid5000Rennes();
  cfg.policy = core::PolicyKind::Interrupt;
  cfg.appA = workload::IorConfig{
      .name = "big",
      .processes = 720,
      .pattern = io::contiguousPattern(8 << 20),
      .iterations = 4,
      .computeSeconds = 8.0,
      .overlapComputeWhenPaused = reorganize};
  cfg.appB = workload::IorConfig{
      .name = "small",
      .processes = 24,
      .pattern = io::contiguousPattern(8 << 20),
      .iterations = 4,
      .computeSeconds = 8.0,
      .startOffset = 2.0};
  return analysis::runPair(cfg);
}

}  // namespace

int main() {
  benchutil::header(
      "Extension (paper Section VI)",
      "Reorganizing internal work while interrupted",
      "g5k-rennes: iterating 720-core writer interrupted by a 24-core app; "
      "pause time credited against the next compute phase");

  const analysis::PairResult off = runCase(false);
  const analysis::PairResult on = runCase(true);

  const double spanOff = off.a.lastEnd - off.a.firstStart;
  const double spanOn = on.a.lastEnd - on.a.firstStart;
  analysis::TextTable table({"reorganization", "big app span (s)",
                             "paused (s)", "compute saved (s)",
                             "small app I/O (s)"});
  table.addRow({"off", analysis::fmt(spanOff, 2),
                analysis::fmt(off.a.sessionPausedSeconds, 2),
                analysis::fmt(off.a.computeSavedSeconds, 2),
                analysis::fmt(off.b.totalIoSeconds(), 2)});
  table.addRow({"on", analysis::fmt(spanOn, 2),
                analysis::fmt(on.a.sessionPausedSeconds, 2),
                analysis::fmt(on.a.computeSavedSeconds, 2),
                analysis::fmt(on.b.totalIoSeconds(), 2)});
  std::cout << table.str() << '\n';

  benchutil::ShapeCheck check;
  check.expect("the big app actually gets interrupted",
               off.a.sessionPausedSeconds > 0.5);
  check.expect("reorganization recovers compute time",
               on.a.computeSavedSeconds > 0.5);
  check.expectNear("the span shrinks by exactly the recovered time",
                   spanOff - spanOn, on.a.computeSavedSeconds, 0.1);
  // The big app's later iterations start earlier, which shifts collision
  // timing with the small app slightly -- but must never hurt it.
  check.expect("the small app is not hurt by the extension",
               on.b.totalIoSeconds() < off.b.totalIoSeconds() + 0.5);
  return check.finish();
}
