// Figure 7: serializing vs interfering on Surveyor for same-size apps.
// (a) 2 x 2048 procs, 32 MB/proc contiguous: each app alone saturates the
//     4-server PVFS, so interference is the full 2x and FCFS helps.
// (b) 2 x 1024 procs: each app is I/O-forwarding-limited and cannot
//     saturate the servers alone, so measured interference is *lower than
//     expected* and serializing mostly hurts the second app.

#include <iostream>

#include "analysis/delta.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

namespace {

using namespace calciom;

analysis::ScenarioConfig makeConfig(int procs, core::PolicyKind policy) {
  analysis::ScenarioConfig cfg;
  cfg.machine = platform::surveyor();
  cfg.policy = policy;
  cfg.appA = workload::IorConfig{.name = "A",
                                 .processes = procs,
                                 .pattern = io::contiguousPattern(32 << 20)};
  cfg.appB = workload::IorConfig{.name = "B",
                                 .processes = procs,
                                 .pattern = io::contiguousPattern(32 << 20)};
  return cfg;
}

}  // namespace

int main() {
  benchutil::header("Figure 7(a,b)",
                    "Interfering vs FCFS for same-size applications",
                    "surveyor: 32 MB/proc contiguous; (a) 2x2048 procs, "
                    "(b) 2x1024 procs");

  const auto dts = analysis::linspace(-14.0, 14.0, 15);
  benchutil::ShapeCheck check;

  for (int procs : {2048, 1024}) {
    const analysis::DeltaGraph interfering =
        analysis::sweepDelta(makeConfig(procs, core::PolicyKind::Interfere),
                             dts);
    const analysis::DeltaGraph fcfs =
        analysis::sweepDelta(makeConfig(procs, core::PolicyKind::Fcfs), dts);

    analysis::TextTable table({"dt (s)", "interf A (s)", "interf B (s)",
                               "fcfs A (s)", "fcfs B (s)", "expected (s)"});
    for (std::size_t i = 0; i < dts.size(); ++i) {
      table.addRow({analysis::fmt(dts[i], 0),
                    analysis::fmt(interfering.points[i].ioTimeA, 2),
                    analysis::fmt(interfering.points[i].ioTimeB, 2),
                    analysis::fmt(fcfs.points[i].ioTimeA, 2),
                    analysis::fmt(fcfs.points[i].ioTimeB, 2),
                    analysis::fmt(interfering.points[i].expectedA, 2)});
    }
    std::cout << "Fig 7 -- 2 x " << procs << " cores (alone: "
              << analysis::fmt(interfering.aloneA, 2) << "s)\n"
              << table.str() << '\n';

    const std::size_t mid = dts.size() / 2;  // dt = 0
    const auto& peak = interfering.points[mid];
    const double slowdown = peak.ioTimeA / interfering.aloneA;
    if (procs == 2048) {
      check.expectNear("(a) 2048: dt=0 interference is the full ~2x",
                       slowdown, 2.0, 0.35);
    } else {
      check.expect("(b) 1024: interference lower than expected (paper)",
                   slowdown < 1.75);
      check.expect("(b) 1024: but interference still exists",
                   slowdown > 1.15);
      // Serializing under low interference only benefits the first app at
      // a high cost for the second one: B's FCFS time at small dt exceeds
      // its interfering time.
      const auto& f = fcfs.points[mid + 2];
      const auto& in = interfering.points[mid + 2];
      check.expect("(b) FCFS hurts the second app more than interfering",
                   f.ioTimeB > in.ioTimeB);
    }
    // Under FCFS the first app is never impacted.
    bool firstUntouched = true;
    for (const auto& p : fcfs.points) {
      const double first = p.dt >= 0 ? p.ioTimeA : p.ioTimeB;
      const double alone = p.dt >= 0 ? fcfs.aloneA : fcfs.aloneB;
      if (first > alone * 1.05) {
        firstUntouched = false;
      }
    }
    check.expect("FCFS: the application accessing first is unimpacted (" +
                     std::to_string(procs) + ")",
                 firstUntouched);
  }
  return check.finish();
}
