// Figure 3: impact of interference on server-side write-back caching. One
// IOR instance writes periodically every ~10s; its bursts are absorbed by
// the servers' caches at NIC speed. A second instance writing every ~7s
// causes periodic overlaps; overlapping bursts overflow the caches and
// throughput collapses to disk speed for those iterations.

#include <algorithm>
#include <iostream>

#include "analysis/scenario.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

int main() {
  using namespace calciom;

  benchutil::header(
      "Figure 3", "Cache-assisted throughput with and without interference",
      "g5k-nancy with kernel write-back caching: A writes 8 MB/proc x 336 "
      "every 10 s; B same volume every 7 s");

  platform::MachineSpec machine = platform::grid5000Nancy(/*withCache=*/true);
  // Calibrated so one application's burst fits the caches but two
  // simultaneous bursts overflow them (the paper's collapse mechanism).
  machine.fs.server.cacheBytes = 64e6;
  machine.fs.server.restoreFraction = 0.5;

  const workload::IorConfig writerA{
      .name = "A",
      .processes = 336,
      .pattern = io::contiguousPattern(8 << 20),
      .iterations = 10,
      .computeSeconds = 10.0};
  const workload::IorConfig writerB{
      .name = "B",
      .processes = 336,
      .pattern = io::contiguousPattern(8 << 20),
      .iterations = 14,
      .computeSeconds = 7.0};

  // (a) A alone.
  const workload::AppStats alone = analysis::runAlone(machine, writerA);
  // (b) A with B interfering.
  analysis::ScenarioConfig cfg;
  cfg.machine = machine;
  cfg.policy = core::PolicyKind::Interfere;
  cfg.appA = writerA;
  cfg.appB = writerB;
  const analysis::PairResult pair = analysis::runPair(cfg);

  const auto tputAlone = alone.iterationThroughputs();
  const auto tputShared = pair.a.iterationThroughputs();
  analysis::TextTable table({"iteration", "alone (MB/s)", "with B (MB/s)"});
  for (std::size_t i = 0; i < tputAlone.size(); ++i) {
    table.addRow({std::to_string(i + 1),
                  analysis::fmt(tputAlone[i] / 1e6, 0),
                  analysis::fmt(tputShared[i] / 1e6, 0)});
  }
  std::cout << table.str() << '\n';

  const double aloneMin =
      *std::min_element(tputAlone.begin(), tputAlone.end());
  const double aloneMean = analysis::mean(tputAlone);
  const double sharedMin =
      *std::min_element(tputShared.begin(), tputShared.end());
  std::cout << "alone: mean " << analysis::fmt(aloneMean / 1e6, 0)
            << " MB/s, min " << analysis::fmt(aloneMin / 1e6, 0)
            << " MB/s; with B: min " << analysis::fmt(sharedMin / 1e6, 0)
            << " MB/s\n\n";

  benchutil::ShapeCheck check;
  check.expect("alone, every burst is absorbed at near-NIC speed (stable)",
               aloneMin > 0.7 * aloneMean);
  check.expect("alone throughput is far above sustained disk speed (cache!)",
               aloneMean > 2.0 * 35 * 18e6);
  check.expect("interference collapses some iterations (cache overflow)",
               sharedMin < 0.45 * aloneMin);
  const int collapsed = static_cast<int>(std::count_if(
      tputShared.begin(), tputShared.end(),
      [&](double t) { return t < 0.6 * aloneMin; }));
  check.expect("only the overlapping iterations collapse (not all)",
               collapsed >= 2 &&
                   collapsed < static_cast<int>(tputShared.size()));
  return check.finish();
}
