// Figure 10: interruption granularity. A writes 4 files of 4 MB/process
// (2048 procs); B writes one such file. Inform/Release can be wired at the
// application level (pauses only between files) or in the ADIO layer
// (pauses between collective-buffering rounds). File-level interruption
// produces the paper's "saw" pattern -- A must finish its current file
// before yielding -- while round-level interruption frees B almost
// immediately.

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "analysis/delta.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

namespace {

using namespace calciom;

enum class Strategy { Interfere, Fcfs, FileLevel, RoundLevel };

analysis::ScenarioConfig makeConfig(Strategy s) {
  analysis::ScenarioConfig cfg;
  cfg.machine = platform::surveyor();
  // Smaller collective buffers than the Fig 7/8 runs so that one file spans
  // several rounds: this is what makes the two hook placements differ.
  cfg.machine.cbBufferBytes = 4ull << 20;
  cfg.appA = workload::IorConfig{.name = "A",
                                 .processes = 2048,
                                 .pattern = io::contiguousPattern(4 << 20),
                                 .filesPerPhase = 4};
  cfg.appB = workload::IorConfig{.name = "B",
                                 .processes = 2048,
                                 .pattern = io::contiguousPattern(4 << 20),
                                 .filesPerPhase = 1};
  switch (s) {
    case Strategy::Interfere:
      cfg.policy = core::PolicyKind::Interfere;
      break;
    case Strategy::Fcfs:
      cfg.policy = core::PolicyKind::Fcfs;
      break;
    case Strategy::FileLevel:
      cfg.policy = core::PolicyKind::Interrupt;
      cfg.granularityA = core::HookGranularity::PerFile;
      cfg.granularityB = core::HookGranularity::PerFile;
      break;
    case Strategy::RoundLevel:
      cfg.policy = core::PolicyKind::Interrupt;
      cfg.granularityA = core::HookGranularity::PerRound;
      cfg.granularityB = core::HookGranularity::PerRound;
      break;
  }
  return cfg;
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 10(a,b)", "File-level vs round-level interruption",
      "surveyor (4 MB cb buffers): A = 4 files x 4 MB/proc x 2048, B = 1 "
      "file; interruption honoured between files or between rounds");

  const auto dts = analysis::linspace(0.0, 6.0, 13);
  const Strategy strategies[] = {Strategy::Interfere, Strategy::Fcfs,
                                 Strategy::FileLevel, Strategy::RoundLevel};
  const char* names[] = {"interfering", "fcfs", "file-level", "round-level"};

  std::map<int, analysis::DeltaGraph> graphs;
  for (int s = 0; s < 4; ++s) {
    graphs.emplace(
        s, analysis::sweepDelta(makeConfig(strategies[s]), dts));
  }

  for (const char* which : {"A (4 files)", "B (1 file)"}) {
    analysis::TextTable table({"dt (s)", names[0], names[1], names[2],
                               names[3]});
    for (std::size_t i = 0; i < dts.size(); ++i) {
      std::vector<std::string> row = {analysis::fmt(dts[i], 1)};
      for (int s = 0; s < 4; ++s) {
        const auto& p = graphs.at(s).points[i];
        row.push_back(analysis::fmt(which[0] == 'A' ? p.ioTimeA : p.ioTimeB,
                                    2));
      }
      table.addRow(row);
    }
    std::cout << "Fig 10 -- write time of app " << which << " (alone: A "
              << analysis::fmt(graphs.at(0).aloneA, 2) << "s, B "
              << analysis::fmt(graphs.at(0).aloneB, 2) << "s)\n"
              << table.str() << '\n';
  }

  benchutil::ShapeCheck check;
  auto seriesB = [&](int s) {
    std::vector<double> out;
    for (const auto& p : graphs.at(s).points) {
      out.push_back(p.ioTimeB);
    }
    return out;
  };
  const auto fileB = seriesB(2);
  const auto roundB = seriesB(3);
  const double fileBMax = *std::max_element(fileB.begin(), fileB.end());
  const double fileBMin = *std::min_element(fileB.begin(), fileB.end());
  const double roundBMax = *std::max_element(roundB.begin(), roundB.end());
  const double aloneB = graphs.at(0).aloneB;
  const double filePeriod = graphs.at(0).aloneA / 4.0;

  check.expect("round-level frees B almost immediately (B ~ alone)",
               roundBMax < aloneB + 0.75 * filePeriod);
  check.expect("file-level forces B to wait out A's current file (saw)",
               fileBMax > aloneB + 0.6 * filePeriod);
  check.expect("the file-level saw spans about one file of amplitude",
               fileBMax - fileBMin > 0.5 * filePeriod);
  // Non-monotonic saw: B's wait resets after each file boundary.
  bool sawtooth = false;
  for (std::size_t i = 1; i + 1 < fileB.size(); ++i) {
    if (fileB[i] < fileB[i - 1] - 0.05 && fileB[i] < fileB[i + 1] - 0.05) {
      sawtooth = true;
    }
  }
  check.expect("file-level B times rise and fall with file boundaries",
               sawtooth);
  // Interruption (either granularity) stretches A by about B's time.
  const auto& aRound = graphs.at(3).points[3];
  check.expectNear("A pays ~T_B(alone) for a round-level interruption",
                   aRound.ioTimeA, graphs.at(3).aloneA + aloneB,
                   0.5 * aloneB + 0.3);
  // FCFS B time decreases as dt grows (less of A left to wait for).
  const auto fcfsB = seriesB(1);
  check.expect("FCFS B time decreases with dt",
               fcfsB.front() > fcfsB.back() + 0.5);
  return check.finish();
}
