// Figure 2: the first delta-graph. Two 336-process applications write 16 MB
// per process (contiguous collective) against a 35-server PVFS on the Nancy
// site. A starts at t=0, B at t=dt; the paper observes the "delta" shape,
// with the first-comer favored but still degraded.

#include <iostream>
#include <vector>

#include "analysis/delta.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

int main() {
  using namespace calciom;

  benchutil::header(
      "Figure 2", "Delta-graph of two equal applications (write time vs dt)",
      "g5k-nancy: 2 x 336 procs, 16 MB/proc contiguous collective, PVFS on "
      "35 servers, no caching");

  analysis::ScenarioConfig cfg;
  cfg.machine = platform::grid5000Nancy();
  cfg.policy = core::PolicyKind::Interfere;
  cfg.appA = workload::IorConfig{.name = "A",
                                 .processes = 336,
                                 .pattern = io::contiguousPattern(16 << 20)};
  cfg.appB = workload::IorConfig{.name = "B",
                                 .processes = 336,
                                 .pattern = io::contiguousPattern(16 << 20)};

  const auto dts = analysis::linspace(-15.0, 15.0, 13);
  const analysis::DeltaGraph graph = analysis::sweepDelta(cfg, dts);

  analysis::TextTable table(
      {"dt (s)", "A write time (s)", "B write time (s)", "expected (s)"});
  for (const auto& p : graph.points) {
    table.addRow({analysis::fmt(p.dt, 1), analysis::fmt(p.ioTimeA, 2),
                  analysis::fmt(p.ioTimeB, 2),
                  analysis::fmt(p.expectedA, 2)});
  }
  std::cout << table.str() << '\n'
            << "alone: A " << analysis::fmt(graph.aloneA, 2) << "s, B "
            << analysis::fmt(graph.aloneB, 2) << "s\n\n";

  benchutil::ShapeCheck check;
  const auto& pts = graph.points;
  const std::size_t mid = pts.size() / 2;  // dt = 0
  check.expect("peak interference at dt=0 (A)",
               pts[mid].ioTimeA >= pts.front().ioTimeA &&
                   pts[mid].ioTimeA >= pts.back().ioTimeA);
  check.expectNear("dt=0 slowdown is about 2x (proportional sharing)",
                   pts[mid].ioTimeA / graph.aloneA, 2.0, 0.45);
  check.expect("far-apart starts show no interference (dt=-15)",
               pts.front().ioTimeB / graph.aloneB < 1.15);
  check.expect("far-apart starts show no interference (dt=+15)",
               pts.back().ioTimeA / graph.aloneA < 1.15);
  // First-comer advantage: for dt>0 A (first) beats B (second).
  bool firstComerFavored = true;
  for (const auto& p : pts) {
    if (p.dt > 0.5 && p.ioTimeA > p.ioTimeB) {
      firstComerFavored = false;
    }
  }
  check.expect("the application arriving first is favored", firstComerFavored);
  // The measured curve tracks the analytic delta shape.
  bool tracksExpected = true;
  for (const auto& p : pts) {
    if (p.expectedA > 0 &&
        (p.ioTimeA < 0.75 * p.expectedA || p.ioTimeA > 1.45 * p.expectedA)) {
      tracksExpected = false;
    }
  }
  check.expect("measured times track the expected delta curve",
               tracksExpected);
  return check.finish();
}
