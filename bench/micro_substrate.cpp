// Substrate microbenchmarks (google-benchmark): cost of the discrete-event
// engine, the weighted max-min allocator, coroutine scheduling, round
// planning and trace synthesis. These bound how large a simulated campaign
// can get; the figure benches above run thousands of flow events each.

#include <benchmark/benchmark.h>

#include <vector>

#include "io/writer.hpp"
#include "net/flow_net.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "workload/trace.hpp"

namespace {

using namespace calciom;

void BM_EngineScheduleAndRun(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    int fired = 0;
    for (int i = 0; i < events; ++i) {
      eng.scheduleAt(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    eng.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

sim::Task pingTask(int hops, int& counter) {
  for (int i = 0; i < hops; ++i) {
    co_await sim::Delay{0.001};
  }
  ++counter;
}

void BM_CoroutineHops(benchmark::State& state) {
  const auto tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    int done = 0;
    for (int i = 0; i < tasks; ++i) {
      eng.spawn(pingTask(32, done));
    }
    eng.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * tasks * 32);
}
BENCHMARK(BM_CoroutineHops)->Arg(64)->Arg(512);

void BM_MaxMinRecompute(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine eng;
    net::FlowNet netw(eng);
    std::vector<net::ResourceId> res;
    for (int i = 0; i < 16; ++i) {
      res.push_back(netw.addResource(1000.0));
    }
    state.ResumeTiming();
    for (int i = 0; i < flows; ++i) {
      net::FlowSpec spec;
      spec.bytes = 1e6;
      spec.path = {res[static_cast<std::size_t>(i % 16)]};
      spec.weight = 1.0 + (i % 7);
      netw.start(spec);  // each start triggers a full recompute
    }
    benchmark::DoNotOptimize(netw.activeFlowCount());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_MaxMinRecompute)->Arg(16)->Arg(64)->Arg(256);

void BM_FlowCompletionCascade(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    net::FlowNet netw(eng);
    const net::ResourceId r = netw.addResource(1e9);
    for (int i = 0; i < flows; ++i) {
      net::FlowSpec spec;
      spec.bytes = 1e6 * (1 + i % 13);  // staggered completions
      spec.path = {r};
      netw.start(spec);
    }
    eng.run();
    benchmark::DoNotOptimize(eng.processedEvents());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowCompletionCascade)->Arg(64)->Arg(256);

void BM_TwoPhaseRoundPlanning(benchmark::State& state) {
  std::uint64_t total = 0;
  for (auto _ : state) {
    for (std::uint64_t bytes = 1 << 20; bytes <= (1ull << 36);
         bytes <<= 1) {
      const int rounds = io::CollectiveWriter::planRounds(bytes, 512,
                                                          16ull << 20);
      for (int r = 0; r < rounds; ++r) {
        total += io::CollectiveWriter::roundBytes(bytes, rounds, r);
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_TwoPhaseRoundPlanning);

void BM_IntrepidTraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    workload::IntrepidModel model;
    model.seed = 1;
    model.horizonSeconds = 3600.0 * 24 * static_cast<double>(state.range(0));
    const auto jobs = model.generate();
    benchmark::DoNotOptimize(jobs.size());
  }
}
BENCHMARK(BM_IntrepidTraceGeneration)->Arg(1)->Arg(7);

void BM_ConcurrencyAnalysis(benchmark::State& state) {
  workload::IntrepidModel model;
  model.seed = 3;
  model.horizonSeconds = 3600.0 * 24 * 7;
  const auto jobs = model.generate();
  for (auto _ : state) {
    const auto dist = workload::concurrencyDistribution(jobs);
    benchmark::DoNotOptimize(dist.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_ConcurrencyAnalysis);

void BM_Xoshiro(benchmark::State& state) {
  sim::Xoshiro256 rng(9);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.uniform01();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Xoshiro);

}  // namespace

BENCHMARK_MAIN();
