// Figure 1 + Section II-B: job-size distribution (histogram + CDF),
// concurrent-job distribution on an Intrepid-like synthetic trace, and the
// probability that another application is doing I/O.
//
// Paper reference points: half the jobs run on <= 2048 cores (1.25% of the
// machine), 4-60 jobs run concurrently, and with E(mu) = 5% the probability
// of a concurrent I/O-active application is ~64%.

#include <cmath>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace calciom;

  benchutil::header("Figure 1(a,b) + Section II-B",
                    "Job sizes, concurrency and I/O activity probability",
                    "synthetic ANL-Intrepid-like SWF trace, 30 days, FCFS "
                    "scheduler on 163840 cores");

  workload::IntrepidModel model;
  model.seed = 2009;  // the trace year, for flavor
  const auto jobs = model.generate();
  std::cout << "jobs generated: " << jobs.size() << "\n\n";

  // ---- Fig 1(a): histogram + CDF of job sizes (by count and core-time) --
  analysis::Histogram byCount = analysis::Histogram::powerOfTwo(8, 18);
  analysis::Histogram byCoreTime = analysis::Histogram::powerOfTwo(8, 18);
  for (const auto& j : jobs) {
    byCount.add(static_cast<double>(j.processors));
    byCoreTime.add(static_cast<double>(j.processors),
                   j.runSeconds * j.processors);
  }
  analysis::TextTable sizes(
      {"cores", "% of jobs", "CDF %", "% of core-time", "core-time CDF %"});
  const auto f = byCount.fractions();
  const auto c = byCount.cdf();
  const auto fw = byCoreTime.fractions();
  const auto cw = byCoreTime.cdf();
  for (std::size_t i = 0; i < byCount.binCount(); ++i) {
    sizes.addRow({std::to_string(static_cast<long>(byCount.binLow(i))),
                  analysis::fmt(100 * f[i], 1), analysis::fmt(100 * c[i], 1),
                  analysis::fmt(100 * fw[i], 1),
                  analysis::fmt(100 * cw[i], 1)});
  }
  std::cout << "Fig 1(a) -- distribution of job sizes\n" << sizes.str() << '\n';

  // ---- Fig 1(b): number of concurrent jobs ------------------------------
  const auto conc = workload::concurrencyDistribution(jobs);
  analysis::TextTable concurrent({"concurrent jobs", "proportion of time"});
  double meanConc = 0.0;
  for (std::size_t n = 0; n < conc.size(); ++n) {
    meanConc += static_cast<double>(n) * conc[n];
    if (n % 4 == 0 && conc[n] > 0.0005) {
      concurrent.addRow({std::to_string(n), analysis::fmt(conc[n], 4)});
    }
  }
  std::cout << "Fig 1(b) -- concurrent jobs per time unit (every 4th level)\n"
            << concurrent.str() << "mean concurrency: "
            << analysis::fmt(meanConc, 1) << "\n\n";

  // ---- Section II-B: P(another application is doing I/O) ----------------
  analysis::TextTable prob({"E(mu)", "P(another app doing I/O)"});
  for (double mu : {0.01, 0.02, 0.05, 0.10}) {
    prob.addRow({analysis::fmt(100 * mu, 0) + "%",
                 analysis::fmt(
                     100 * workload::ioActivityProbability(conc, mu), 1) +
                     "%"});
  }
  std::cout << "Section II-B -- probability of concurrent I/O activity\n"
            << prob.str() << '\n';

  // ---- Shape checks ------------------------------------------------------
  benchutil::ShapeCheck check;
  // Half the jobs at or below 2048 cores: CDF at the 2048 bucket.
  double cdfAt2048 = 0.0;
  for (std::size_t i = 0; i < byCount.binCount(); ++i) {
    if (byCount.binLow(i) <= 2048.0) {
      cdfAt2048 = c[i];
    }
  }
  check.expectNear("~half the jobs run on <= 2048 cores", cdfAt2048, 0.52,
                   0.08);
  check.expect("concurrency spans the paper's 4-60 band",
               conc.size() >= 20 && conc.size() <= 120);
  const double p5 = workload::ioActivityProbability(conc, 0.05);
  check.expect("P(I/O active | mu=5%) is in the paper's ~64% regime",
               p5 > 0.5 && p5 < 0.9);
  check.expect("probability grows with mu",
               workload::ioActivityProbability(conc, 0.10) > p5);
  return check.finish();
}
