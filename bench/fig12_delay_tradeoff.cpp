// Figure 12: when interference is lower than expected (two 1024-core apps
// that individually cannot saturate Surveyor's PVFS), serializing is NOT
// the right choice: the second app loses more by waiting than both lose by
// overlapping. The paper suggests more elaborate decisions (slight delays /
// partial overlap); we implement the interference-aware extension of the
// dynamic policy, which estimates overlap cost with the fluid model and an
// overlap-efficiency factor derived from machine knowledge.

#include <algorithm>
#include <iostream>

#include "analysis/delta.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

namespace {

using namespace calciom;

analysis::ScenarioConfig makeConfig(core::PolicyKind policy,
                                    bool considerInterference) {
  analysis::ScenarioConfig cfg;
  cfg.machine = platform::surveyor();
  cfg.policy = policy;
  cfg.metric = std::make_shared<core::CpuSecondsWasted>();
  if (considerInterference) {
    cfg.dynamicOptions.considerInterference = true;
    // Overlap efficiency from machine knowledge: one 1024-core app injects
    // at 16 IONs * 250 MB/s = 4 GB/s while the servers sustain 5.4 GB/s;
    // together the two apps extract 5.4/4.0 = 1.35x the single-app rate.
    cfg.dynamicOptions.overlapEfficiency = 1.35;
  }
  cfg.appA = workload::IorConfig{.name = "A",
                                 .processes = 1024,
                                 .pattern = io::contiguousPattern(32 << 20)};
  cfg.appB = workload::IorConfig{.name = "B",
                                 .processes = 1024,
                                 .pattern = io::contiguousPattern(32 << 20)};
  return cfg;
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 12", "Low interference: serializing is not a good decision",
      "surveyor: 2 x 1024 procs, 32 MB/proc contiguous; ION-limited apps "
      "interfere far less than proportional sharing predicts");

  const auto dts = analysis::linspace(-14.0, 14.0, 15);
  const analysis::DeltaGraph interfering =
      analysis::sweepDelta(makeConfig(core::PolicyKind::Interfere, false),
                           dts);
  const analysis::DeltaGraph fcfs =
      analysis::sweepDelta(makeConfig(core::PolicyKind::Fcfs, false), dts);
  const analysis::DeltaGraph dynamic = analysis::sweepDelta(
      makeConfig(core::PolicyKind::Dynamic, true), dts);

  analysis::TextTable table({"dt (s)", "interf B (s)", "fcfs B (s)",
                             "calciom B (s)", "calciom choice",
                             "expected-2x (s)"});
  for (std::size_t i = 0; i < dts.size(); ++i) {
    table.addRow({analysis::fmt(dts[i], 0),
                  analysis::fmt(interfering.points[i].ioTimeB, 2),
                  analysis::fmt(fcfs.points[i].ioTimeB, 2),
                  analysis::fmt(dynamic.points[i].ioTimeB, 2),
                  dynamic.points[i].hasDecision
                      ? core::toString(dynamic.points[i].decision)
                      : "-",
                  analysis::fmt(interfering.points[i].expectedB, 2)});
  }
  std::cout << table.str() << '\n'
            << "alone: " << analysis::fmt(interfering.aloneA, 2) << "s\n\n";

  benchutil::ShapeCheck check;
  const std::size_t mid = dts.size() / 2;
  const double slowdown =
      interfering.points[mid].ioTimeA / interfering.aloneA;
  check.expect("measured interference well below the expected 2x",
               slowdown < 1.75);
  check.expect("interference is still present (> 1.15x)", slowdown > 1.15);
  // Serializing hurts the second app more than interfering at small dt>0.
  check.expect("FCFS costs the 2nd app more than interfering here",
               fcfs.points[mid + 1].ioTimeB >
                   interfering.points[mid + 1].ioTimeB);
  // The interference-aware dynamic policy therefore overlaps.
  int overlapChoices = 0;
  for (const auto& p : dynamic.points) {
    if (p.hasDecision && p.decision == core::Action::Interfere) {
      ++overlapChoices;
    }
  }
  check.expect("CALCioM (interference-aware) chooses to overlap",
               overlapChoices >= 5);
  // And nobody waits as long as FCFS's second app: the slower of the two
  // overlapping apps still beats the serialized one (the paper's argument
  // for not serializing when interference is low).
  const double slowestDyn = std::max(dynamic.points[mid + 1].ioTimeA,
                                     dynamic.points[mid + 1].ioTimeB);
  const double slowestFcfs = std::max(fcfs.points[mid + 1].ioTimeA,
                                      fcfs.points[mid + 1].ioTimeB);
  check.expect("overlapping beats serializing for the impacted app",
               slowestDyn < slowestFcfs);
  return check.finish();
}
