// Benchmark of the sharded simulation core (platform::Cluster + batched
// equal-time dispatch).
//
// Three tiers, all JSON on stdout (committed baseline: BENCH_cluster.json):
//
//  * serial_100k — one shard, the exact 100k-flow scenario of
//    bench/perf_flownet.cpp's largest tier (same generator, same seed), run
//    through the Cluster path with one worker. Guards the acceptance
//    criterion that batched dispatch and the sync-horizon loop do not
//    regress the serial path vs BENCH_flownet.json.
//
//  * cluster_1m — 16 shards x 15625 workers x 4 transfers = 1,000,000 flows
//    simulated to completion, repeated at 1/2/4/8 worker threads. Records
//    wall seconds, speedup vs 1 worker, and a per-run fingerprint folding
//    every shard's event counters, final clock bits and per-resource
//    delivered-byte bits; the fingerprints must be identical across worker
//    counts (thread-count invariance) or the bench exits non-zero. The JSON
//    also records hardware_threads: on a 1-core container the speedup
//    column measures scheduling overhead, not parallelism.
//
//  * storage_2k — 8 shards x 256 = 2048 cache-enabled storage servers fed
//    by synchronized periodic burst writers (collective-checkpoint shape:
//    bursts start at aligned times, so completion storms exercise
//    popBatch). Aggregates StorageServer::TransitionProfile to answer the
//    ROADMAP "cache/locality model at scale" question: is the per-server
//    transition-event reschedule hot at thousands of servers? The verdict
//    is recorded in src/net/README.md.
//
//  * cluster_arbiter — 16 shards x 4 coordinated applications each, three
//    I/O phases per app, arbitrated by a calciom::GlobalArbiter at the
//    sync-horizon barriers (Dynamic policy). Repeated at 1/2/4/8 workers;
//    the fingerprint additionally folds every DecisionRecord (time bits,
//    requester, accessor set, action, metric-cost bits), so a divergence in
//    *decisions* — not just in shard event streams — fails the bench.
//
//  * cluster_fig04 — machine-wide Figure 4: real io::CollectiveWriter
//    applications on two compute shards share one PFS on a storage shard
//    (platform::SharedStorageModel) under a GlobalArbiter; B in {8, 64,
//    336} cores against A = 336, g5k-nancy shard spec. Reports aggregate
//    throughput and B's slowdown; exits non-zero if the paper's shape (B=8
//    crushed, slowdown easing as B grows) is lost, if a run does not
//    complete, or if the decision-stream + delivered-bytes fingerprint
//    diverges across 1/2/4 workers.
//
//  * cluster_fig09 — machine-wide Figure 9: the three static policies
//    (interfering / FCFS / interruption) on the asymmetric 744/24 split,
//    g5k-rennes shard spec, B arriving second. Reports both applications'
//    interference factors; exits non-zero unless interruption rescues the
//    small app where FCFS strands it, at near-zero cost for the big one.
//
// `--smoke` runs a small cluster at 1 and 2 workers — once pure flows, once
// with the global arbiter in the loop, once as a machine-wide I/O campaign
// (writers on distinct shards, shared PFS, Interrupt policy) — and exits
// non-zero if fingerprints diverge or the runs do not complete: the CI
// tripwire for shard, cross-shard-coordination and shared-storage
// determinism. It then replays the full cluster_arbiter tier once and gates
// on its recorded decision fingerprint plus at least a 2x multi-shard
// sync-round reduction vs the 389 pre-horizon grid barriers (the
// barrier-tax win must not silently regress).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cluster_scenario.hpp"
#include "bench/bench_util.hpp"
#include "bench/flow_scenarios.hpp"
#include "calciom/global_arbiter.hpp"
#include "calciom/policy.hpp"
#include "calciom/session.hpp"
#include "io/hooks.hpp"
#include "io/pattern.hpp"
#include "net/flow_net.hpp"
#include "platform/cluster.hpp"
#include "platform/presets.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "storage/server.hpp"
#include "workload/ior.hpp"

namespace {

using calciom::GlobalArbiter;
using calciom::core::DecisionRecord;
using calciom::core::makePolicy;
using calciom::core::PolicyKind;
using calciom::core::Session;
using calciom::core::SessionConfig;
using calciom::net::FlowNet;
using calciom::net::ResourceId;
using calciom::platform::Cluster;
using calciom::platform::ClusterSpec;
using calciom::scenarios::burstWriter;
using calciom::scenarios::flowWorker;
using calciom::scenarios::FlowScenario;
using calciom::scenarios::makeClusteredScenario;
using calciom::sim::Engine;
using calciom::storage::StorageServer;

// ---------------------------------------------------------------------------
// Determinism fingerprint: FNV-1a over every shard's deterministic counters,
// clock bits and per-resource delivered-byte bits. wallSeconds is explicitly
// NOT folded in (it is the one nondeterministic EngineStats field).

class Fingerprint {
 public:
  void fold(std::uint64_t v) noexcept {
    h_ ^= v;
    h_ *= 0x100000001B3ULL;
  }
  void foldBits(double v) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    fold(bits);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

std::uint64_t clusterFingerprint(Cluster& cl) {
  Fingerprint fp;
  for (std::size_t i = 0; i < cl.shardCount(); ++i) {
    Engine& eng = cl.engine(i);
    const auto es = eng.stats();
    fp.fold(es.processedEvents);
    fp.fold(es.scheduledEvents);
    fp.fold(es.pendingEvents);
    fp.fold(es.maxQueueDepth);
    fp.fold(es.dispatchBatches);
    fp.foldBits(eng.now());
    FlowNet& net = cl.machine(i).net();
    for (ResourceId r = 0;
         r < static_cast<ResourceId>(net.resourceCount()); ++r) {
      fp.foldBits(net.deliveredThrough(r));
    }
  }
  return fp.value();
}

/// Folds the global arbiter's whole decision stream on top of the shard
/// fingerprint: a coordination-layer divergence (different decision time,
/// requester, accessor set, action or dynamic-policy cost) changes the
/// fingerprint even when shard event counts happen to agree.
std::uint64_t arbiterFingerprint(Cluster& cl, const GlobalArbiter& ga) {
  Fingerprint fp;
  fp.fold(clusterFingerprint(cl));
  fp.fold(ga.grantsIssued());
  fp.fold(ga.pausesIssued());
  fp.fold(ga.messagesMerged());
  fp.fold(ga.exchanges());
  for (const DecisionRecord& d : ga.decisions()) {
    fp.foldBits(d.time);
    fp.fold(d.requester);
    fp.fold(static_cast<std::uint64_t>(d.action));
    fp.fold(d.accessors.size());
    for (std::uint32_t a : d.accessors) {
      fp.fold(a);
    }
    for (const auto& c : d.costs) {
      fp.fold(static_cast<std::uint64_t>(c.action));
      fp.foldBits(c.metricCost);
    }
  }
  return fp.value();
}

// ---------------------------------------------------------------------------
// Flow-scenario cluster runs.

struct FlowTier {
  std::size_t shards;
  int clustersPerShard;
  int workersPerShard;
  int flowsPerWorker;
  std::uint64_t seed;
};

struct RunResult {
  /// Externally timed elapsed seconds of the measured window.
  double wallSeconds = 0.0;
  /// ClusterStats::cpuSeconds over the same window: CPU burned inside
  /// shard loops, summed over shards. Reported next to wallSeconds, never
  /// added to it (see the ClusterStats doc: the per-shard timers overlap
  /// under workers and nest inside the external timer when serial).
  double cpuSeconds = 0.0;
  std::uint64_t events = 0;
  /// events / wallSeconds — wall-clock throughput, the scaling metric.
  double eventsPerSecond = 0.0;
  std::uint64_t dispatchBatches = 0;
  std::size_t maxQueueDepth = 0;
  std::uint64_t syncRounds = 0;
  std::uint64_t horizonSteps = 0;
  std::uint64_t soloRounds = 0;
  std::uint64_t dispatchedShards = 0;
  std::uint64_t exchangesNonEmpty = 0;
  std::uint64_t exchangesEmpty = 0;
  std::uint64_t barriersSkipped = 0;
  std::uint64_t fingerprint = 0;
  bool complete = false;
};

/// Windowed counter deltas + fingerprint, shared by every tier's collection
/// path. `base` is the stats snapshot at the start of the measured window
/// (default-constructed for whole-campaign tiers).
void fillRun(RunResult& out, const calciom::platform::ClusterStats& stats,
             const calciom::platform::ClusterStats& base) {
  out.cpuSeconds = stats.cpuSeconds - base.cpuSeconds;
  out.events = stats.total.processedEvents - base.total.processedEvents;
  out.eventsPerSecond = out.wallSeconds > 0.0
                            ? static_cast<double>(out.events) / out.wallSeconds
                            : 0.0;
  out.dispatchBatches =
      stats.total.dispatchBatches - base.total.dispatchBatches;
  out.maxQueueDepth = stats.total.maxQueueDepth;
  out.syncRounds = stats.syncRounds - base.syncRounds;
  out.horizonSteps = stats.horizonSteps - base.horizonSteps;
  out.soloRounds = stats.soloRounds - base.soloRounds;
  out.dispatchedShards = stats.dispatchedShards - base.dispatchedShards;
  out.exchangesNonEmpty =
      stats.barrierExchangesNonEmpty - base.barrierExchangesNonEmpty;
  out.exchangesEmpty = stats.barrierExchangesEmpty - base.barrierExchangesEmpty;
  out.barriersSkipped = stats.barriersSkipped - base.barriersSkipped;
}

/// Builds the cluster for a tier, runs it to completion with `workers`
/// threads and collects counters. `warmup` simulated seconds run first —
/// with the same worker count, so thread-pool spin-up is paid before the
/// timer starts — and are excluded from the timed window so the window
/// sees full concurrency, mirroring perf_flownet's measurement.
RunResult runFlowTier(const FlowTier& tier, unsigned workers, double warmup) {
  ClusterSpec spec;
  spec.name = "bench";
  spec.shards = tier.shards;
  spec.seed = tier.seed;
  Cluster cl(spec);
  // Owner of per-shard resource-id tables; scenarios die with this scope.
  std::vector<std::vector<ResourceId>> res(tier.shards);
  std::vector<FlowScenario> scenarios;
  scenarios.reserve(tier.shards);
  for (std::size_t s = 0; s < tier.shards; ++s) {
    scenarios.push_back(makeClusteredScenario(tier.seed + s, tier.clustersPerShard,
                                          tier.workersPerShard,
                                          tier.flowsPerWorker));
    FlowNet& net = cl.machine(s).net();
    for (double cap : scenarios[s].capacities) {
      res[s].push_back(net.addResource(cap));
    }
    for (const calciom::scenarios::WorkerPlan& plan : scenarios[s].workers) {
      cl.engine(s).spawn(flowWorker(net, plan, res[s]));
    }
  }
  cl.runUntil(warmup, workers);
  // Baseline every windowed counter at the same point, so events, batches
  // and rounds all describe the post-warmup window and events/batches is a
  // meaningful storm size. (maxQueueDepth stays campaign-cumulative: a
  // high-water mark has no window.)
  const auto baseStats = cl.stats();
  const auto t0 = std::chrono::steady_clock::now();
  cl.run(workers);
  const auto t1 = std::chrono::steady_clock::now();
  RunResult out;
  out.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
  fillRun(out, cl.stats(), baseStats);
  out.fingerprint = clusterFingerprint(cl);
  out.complete = cl.empty();
  return out;
}

// ---------------------------------------------------------------------------
// Storage tier: synchronized periodic burst writers over cache-enabled
// servers, profiling the transition-event reschedule at fleet scale.

struct StorageTier {
  std::size_t shards = 8;
  int serversPerShard = 256;
  int appsPerServer = 2;
  int periods = 6;
  double periodSeconds = 10.0;
  std::uint64_t seed = 0x57024A6Eull;
};

struct StorageResult {
  RunResult run;
  std::uint64_t transitionsScheduled = 0;
  std::uint64_t transitionsFired = 0;
  std::uint64_t transitionsStale = 0;
  std::uint64_t totalScheduled = 0;
};

StorageResult runStorageTier(const StorageTier& tier, unsigned workers) {
  ClusterSpec spec;
  spec.name = "storage-bench";
  spec.shards = tier.shards;
  spec.seed = tier.seed;
  Cluster cl(spec);
  std::vector<std::vector<std::unique_ptr<StorageServer>>> servers(
      tier.shards);
  for (std::size_t s = 0; s < tier.shards; ++s) {
    Engine& eng = cl.engine(s);
    FlowNet& net = cl.machine(s).net();
    for (int i = 0; i < tier.serversPerShard; ++i) {
      StorageServer::Config cfg;
      cfg.nicBandwidth = 1e9;
      cfg.diskBandwidth = 50e6;
      cfg.cacheBytes = 64e6;
      cfg.localityAlpha = 0.4;
      servers[s].push_back(std::make_unique<StorageServer>(
          eng, net, cfg, "srv" + std::to_string(i)));
      for (int a = 0; a < tier.appsPerServer; ++a) {
        const auto app = static_cast<std::uint32_t>(i * tier.appsPerServer + a);
        eng.spawn(burstWriter(eng, net, servers[s].back()->ingress(), app,
                              tier.periods, tier.periodSeconds));
      }
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  cl.run(workers);
  const auto t1 = std::chrono::steady_clock::now();
  const auto stats = cl.stats();
  StorageResult out;
  out.run.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
  fillRun(out.run, stats, {});
  out.run.fingerprint = clusterFingerprint(cl);
  out.run.complete = cl.empty();
  out.totalScheduled = stats.total.scheduledEvents;
  for (auto& shard : servers) {
    for (auto& srv : shard) {
      const auto& prof = srv->transitionProfile();
      out.transitionsScheduled += prof.scheduled;
      out.transitionsFired += prof.fired;
      out.transitionsStale += prof.stale;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Cross-shard coordination tier: synthetic coordinated applications (delay
// rounds, real Session/stub/barrier protocol) arbitrated by a
// GlobalArbiter. Measures the barrier-exchange layer, not the I/O model.

struct ArbiterTier {
  std::size_t shards = 16;
  int appsPerShard = 4;
  int phases = 3;
  int rounds = 6;
  double roundSeconds = 0.05;
};

struct ArbiterResult {
  RunResult run;
  std::uint64_t decisions = 0;
  std::uint64_t merged = 0;
  std::uint64_t exchanges = 0;
  std::uint64_t grants = 0;
  std::uint64_t pauses = 0;
};

calciom::sim::Task coordinatedApp(Engine& eng, Session& session, int phases,
                                  int rounds, double roundSeconds,
                                  double startAt, double idleSeconds) {
  co_await calciom::sim::Delay{startAt};
  for (int p = 0; p < phases; ++p) {
    if (p > 0) {
      co_await calciom::sim::Delay{idleSeconds};
    }
    calciom::io::PhaseInfo info;
    info.appId = session.config().appId;
    info.appName = session.config().appName;
    info.processes = session.config().cores;
    info.files = 1;
    info.roundsPerFile = rounds;
    info.totalBytes = 1000;
    info.bytesPerRound = 1000 / static_cast<std::uint64_t>(rounds);
    info.estimatedAloneSeconds = rounds * roundSeconds;
    co_await eng.spawn(session.beginPhase(info));
    for (int r = 0; r < rounds; ++r) {
      co_await calciom::sim::Delay{roundSeconds};
      if (r + 1 < rounds) {
        co_await eng.spawn(session.roundBoundary(
            static_cast<double>(r + 1) / static_cast<double>(rounds)));
      }
    }
    co_await eng.spawn(session.endPhase());
  }
}

ArbiterResult runArbiterTier(const ArbiterTier& tier, unsigned workers) {
  ClusterSpec spec;
  spec.name = "arbiter-bench";
  spec.shards = tier.shards;
  spec.syncHorizonSeconds = 0.25;
  Cluster cl(spec);
  GlobalArbiter& ga = GlobalArbiter::install(cl, makePolicy(PolicyKind::Dynamic));
  std::vector<std::unique_ptr<Session>> sessions;
  for (std::size_t s = 0; s < tier.shards; ++s) {
    Engine& eng = cl.engine(s);
    for (int a = 0; a < tier.appsPerShard; ++a) {
      const auto id = static_cast<std::uint32_t>(
          s * static_cast<std::size_t>(tier.appsPerShard) +
          static_cast<std::size_t>(a) + 1);
      sessions.push_back(std::make_unique<Session>(
          eng, cl.machine(s).ports(),
          SessionConfig{.appId = id,
                        .appName = "app" + std::to_string(id),
                        .cores = 32 + 32 * static_cast<int>(id % 4)}));
      // Staggered arrivals: enough overlap that the arbiter queues and
      // interrupts across shards every few barriers.
      const double start = 0.1 * static_cast<double>(id % 23);
      const double idle = 0.3 + 0.1 * static_cast<double>(id % 3);
      eng.spawn(coordinatedApp(eng, *sessions.back(), tier.phases,
                               tier.rounds, tier.roundSeconds, start, idle));
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  cl.run(workers);
  const auto t1 = std::chrono::steady_clock::now();
  ArbiterResult out;
  out.run.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
  fillRun(out.run, cl.stats(), {});
  out.run.fingerprint = arbiterFingerprint(cl, ga);
  out.run.complete = cl.empty();
  out.decisions = ga.decisions().size();
  out.merged = ga.messagesMerged();
  out.exchanges = ga.exchanges();
  out.grants = ga.grantsIssued();
  out.pauses = ga.pausesIssued();
  return out;
}

// ---------------------------------------------------------------------------
// Machine-wide figure tiers: real writers on compute shards, one shared PFS
// on a storage shard, coordinated through the GlobalArbiter.

using calciom::analysis::ClusterAppPlan;
using calciom::analysis::ClusterRunResult;
using calciom::analysis::ClusterScenarioConfig;
using calciom::platform::MachineSpec;
using calciom::workload::AppStats;
using calciom::workload::IorConfig;

/// Folds everything deterministic about a machine-wide campaign: shard
/// event counts and clock bits, the delivered-byte total, the decision
/// stream (time/requester/accessors/action/cost bits), the cross-shard
/// request log, and every app's timing — the ISSUE 4 "decision-stream +
/// delivered-bytes" fingerprint.
std::uint64_t machineWideFingerprint(const ClusterRunResult& r) {
  Fingerprint fp;
  for (std::uint64_t e : r.shardEvents) {
    fp.fold(e);
  }
  for (double c : r.shardClocks) {
    fp.foldBits(c);
  }
  fp.foldBits(r.bytesDelivered);
  fp.fold(r.grantsIssued);
  fp.fold(r.pausesIssued);
  fp.fold(r.storage.requestsForwarded);
  fp.fold(r.storage.completionsForwarded);
  for (const DecisionRecord& d : r.decisions) {
    fp.foldBits(d.time);
    fp.fold(d.requester);
    fp.fold(static_cast<std::uint64_t>(d.action));
    fp.fold(d.accessors.size());
    for (std::uint32_t a : d.accessors) {
      fp.fold(a);
    }
    for (const auto& c : d.costs) {
      fp.fold(static_cast<std::uint64_t>(c.action));
      fp.foldBits(c.metricCost);
    }
  }
  for (const calciom::platform::RequestTrace& t : r.requestLog) {
    fp.fold(t.appId);
    fp.fold(t.originShard);
    fp.foldBits(t.issueTime);
    fp.foldBits(t.dispatchTime);
    fp.foldBits(t.completeTime);
    fp.fold(t.bytes);
  }
  for (const AppStats& app : r.apps) {
    fp.foldBits(app.firstStart);
    fp.foldBits(app.lastEnd);
    fp.fold(app.totalBytes());
  }
  return fp.value();
}

/// Two writers on distinct compute shards (0 and 1), storage on shard 2.
ClusterRunResult runMachineWidePair(
    const MachineSpec& machine, const IorConfig& a, const IorConfig& b,
    PolicyKind policy, unsigned workers, double syncHorizonSeconds = 0.25,
    calciom::core::HookGranularity granularity =
        calciom::core::HookGranularity::PerRound) {
  ClusterScenarioConfig cfg;
  cfg.machine = machine;
  cfg.shards = 3;
  cfg.syncHorizonSeconds = syncHorizonSeconds;
  cfg.policy = policy;
  cfg.workers = workers;
  cfg.granularity = granularity;
  cfg.apps = {ClusterAppPlan{a, 0}, ClusterAppPlan{b, 1}};
  return calciom::analysis::runCluster(cfg);
}

/// One writer alone on the same 3-shard platform (identical exchange
/// overheads, so alone/with ratios isolate interference).
ClusterRunResult runMachineWideAlone(const MachineSpec& machine,
                                     const IorConfig& app, unsigned workers,
                                     double syncHorizonSeconds = 0.25) {
  ClusterScenarioConfig cfg;
  cfg.machine = machine;
  cfg.shards = 3;
  cfg.syncHorizonSeconds = syncHorizonSeconds;
  cfg.policy = PolicyKind::Fcfs;  // no contention: policy is irrelevant
  cfg.workers = workers;
  cfg.apps = {ClusterAppPlan{app, 0}};
  return calciom::analysis::runCluster(cfg);
}

double appThroughput(const AppStats& app) {
  const double io = app.totalIoSeconds();
  return io > 0.0 ? static_cast<double>(app.totalBytes()) / io : 0.0;
}

// ---------------------------------------------------------------------------

void printRun(const char* indent, unsigned workers, const RunResult& r,
              bool last) {
  // wall_s is the external timer, cpu_s the sum of shard-loop timers;
  // they are separate columns on purpose (RunResult::cpuSeconds).
  std::printf(
      "%s{\"workers\": %u, \"wall_s\": %.6f, \"cpu_s\": %.6f, "
      "\"events\": %llu, "
      "\"events_per_s\": %.0f, \"batches\": %llu, \"sync_rounds\": %llu, "
      "\"horizon_steps\": %llu, \"solo_rounds\": %llu, "
      "\"dispatched_shards\": %llu, \"exchanges_nonempty\": %llu, "
      "\"exchanges_empty\": %llu, \"barriers_skipped\": %llu, "
      "\"max_queue_depth\": %zu, \"fingerprint\": \"%016llx\", "
      "\"complete\": %s}%s\n",
      indent, workers, r.wallSeconds, r.cpuSeconds,
      static_cast<unsigned long long>(r.events), r.eventsPerSecond,
      static_cast<unsigned long long>(r.dispatchBatches),
      static_cast<unsigned long long>(r.syncRounds),
      static_cast<unsigned long long>(r.horizonSteps),
      static_cast<unsigned long long>(r.soloRounds),
      static_cast<unsigned long long>(r.dispatchedShards),
      static_cast<unsigned long long>(r.exchangesNonEmpty),
      static_cast<unsigned long long>(r.exchangesEmpty),
      static_cast<unsigned long long>(r.barriersSkipped), r.maxQueueDepth,
      static_cast<unsigned long long>(r.fingerprint),
      r.complete ? "true" : "false", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  if (argc > 1) {
    if (argc == 2 && std::strcmp(argv[1], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke]\n"
                   "  --smoke  small cluster at 1/2 workers; exit 1 unless\n"
                   "           runs complete with identical fingerprints\n",
                   argv[0]);
      return 2;
    }
  }

  // Workers start their first flow within the first 2.05 simulated seconds
  // (startDelay is uniform in [0, 2)); measuring from there sees the full
  // advertised concurrency. Matches perf_flownet.
  constexpr double kWarmup = 2.05;

  bool ok = true;
  benchutil::jsonHeader("perf_cluster", smoke ? "smoke" : "full");

  if (smoke) {
    const FlowTier tier{4, 64, 1000, 2, 0xC1C10ull};
    const RunResult r1 = runFlowTier(tier, 1, kWarmup);
    const RunResult r2 = runFlowTier(tier, 2, kWarmup);
    std::printf("  \"smoke\": {\n    \"flows\": %d,\n    \"runs\": [\n",
                static_cast<int>(tier.shards) * tier.workersPerShard *
                    tier.flowsPerWorker);
    printRun("      ", 1, r1, false);
    printRun("      ", 2, r2, true);
    std::printf("    ]\n  },\n");
    const bool flowsOk =
        r1.complete && r2.complete && r1.fingerprint == r2.fingerprint;
    std::fprintf(stderr, "smoke: fingerprints %016llx / %016llx -> %s\n",
                 static_cast<unsigned long long>(r1.fingerprint),
                 static_cast<unsigned long long>(r2.fingerprint),
                 flowsOk ? "OK" : "DETERMINISM REGRESSION");
    // Same tripwire with the global arbiter in the loop: the fingerprint
    // folds every DecisionRecord, so cross-shard coordination must be
    // worker-count invariant too.
    const ArbiterTier atier{4, 2, 2, 4, 0.1};
    const ArbiterResult a1 = runArbiterTier(atier, 1);
    const ArbiterResult a2 = runArbiterTier(atier, 2);
    std::printf("  \"smoke_global_arbiter\": {\n    \"apps\": %d, "
                "\"decisions\": %llu,\n    \"runs\": [\n",
                static_cast<int>(atier.shards) * atier.appsPerShard,
                static_cast<unsigned long long>(a1.decisions));
    printRun("      ", 1, a1.run, false);
    printRun("      ", 2, a2.run, true);
    std::printf("    ]\n  },\n");
    const bool arbiterOk = a1.run.complete && a2.run.complete &&
                           a1.run.fingerprint == a2.run.fingerprint &&
                           a1.decisions > 0;
    std::fprintf(stderr,
                 "smoke_global_arbiter: fingerprints %016llx / %016llx "
                 "(%llu decisions) -> %s\n",
                 static_cast<unsigned long long>(a1.run.fingerprint),
                 static_cast<unsigned long long>(a2.run.fingerprint),
                 static_cast<unsigned long long>(a1.decisions),
                 arbiterOk ? "OK" : "DETERMINISM REGRESSION");
    // Machine-wide I/O gate: two real writers on distinct compute shards,
    // one shared PFS on the storage shard, Interrupt policy. The
    // fingerprint folds the decision stream, the cross-shard request log
    // and delivered bytes, so a worker-count-dependent divergence anywhere
    // in the session / global-arbiter / shared-storage path fails CI.
    MachineSpec mw;
    mw.name = "smoke-mw";
    mw.totalCores = 512;
    mw.coresPerNode = 8;
    mw.streamNicBandwidth = calciom::net::kUnlimited;
    mw.interconnect = calciom::mpi::CommCosts{.latency = 1e-5,
                                              .bandwidthPerProcess = 100e6};
    mw.fs.serverCount = 4;
    mw.fs.server.nicBandwidth = 16e6;
    mw.fs.server.diskBandwidth = 16e6;
    mw.fs.queuePenaltySeconds = 0.0;
    mw.cbBufferBytes = 1ull << 20;
    IorConfig big;
    big.name = "A";
    big.processes = 64;
    big.pattern = calciom::io::contiguousPattern(2u << 20);
    IorConfig small;
    small.name = "B";
    small.processes = 16;
    small.pattern = calciom::io::contiguousPattern(1u << 20);
    small.startOffset = 0.8;
    const ClusterRunResult m1 =
        runMachineWidePair(mw, big, small, PolicyKind::Interrupt, 1);
    const ClusterRunResult m2 =
        runMachineWidePair(mw, big, small, PolicyKind::Interrupt, 2);
    const std::uint64_t mfp1 = machineWideFingerprint(m1);
    const std::uint64_t mfp2 = machineWideFingerprint(m2);
    std::printf(
        "  \"smoke_machine_wide\": {\n"
        "    \"apps\": 2, \"decisions\": %zu, \"pauses\": %zu, "
        "\"requests_forwarded\": %llu,\n"
        "    \"bytes_delivered\": %.0f,\n"
        "    \"fingerprints\": [\"%016llx\", \"%016llx\"]\n  },\n",
        m1.decisions.size(), m1.pausesIssued,
        static_cast<unsigned long long>(m1.storage.requestsForwarded),
        m1.bytesDelivered, static_cast<unsigned long long>(mfp1),
        static_cast<unsigned long long>(mfp2));
    const bool machineWideOk =
        mfp1 == mfp2 && m1.pausesIssued > 0 &&
        m1.storage.requestsForwarded > 0 &&
        m1.storage.requestsForwarded == m1.storage.completionsForwarded;
    std::fprintf(stderr,
                 "smoke_machine_wide: fingerprints %016llx / %016llx "
                 "(%zu decisions, %zu pauses) -> %s\n",
                 static_cast<unsigned long long>(mfp1),
                 static_cast<unsigned long long>(mfp2), m1.decisions.size(),
                 m1.pausesIssued,
                 machineWideOk ? "OK" : "DETERMINISM REGRESSION");
    // Barrier-tax gate: the full cluster_arbiter tier at 1 worker, pinned
    // to its recorded decision fingerprint AND to at least a 2x reduction
    // in multi-shard sync rounds vs the 389 grid barriers the pre-horizon
    // loop executed. Catches both kinds of regression: a horizon-vote or
    // sparse-activation change that alters decisions (fingerprint moves),
    // and one that silently re-inflates the barrier tax (sync_rounds
    // creeps back toward one-per-grid-step).
    constexpr std::uint64_t kArbiterFingerprint = 0xcf240e6e58704590ULL;
    constexpr std::uint64_t kLegacyGridRounds = 389;
    const ArbiterResult gate = runArbiterTier(ArbiterTier{}, 1);
    const bool barrierTaxOk = gate.run.complete &&
                              gate.run.fingerprint == kArbiterFingerprint &&
                              gate.run.syncRounds * 2 <= kLegacyGridRounds;
    std::printf("  \"smoke_barrier_tax\": {\n"
                "    \"expected_fingerprint\": \"%016llx\", "
                "\"legacy_grid_rounds\": %llu,\n",
                static_cast<unsigned long long>(kArbiterFingerprint),
                static_cast<unsigned long long>(kLegacyGridRounds));
    printRun("    \"run\": ", 1, gate.run, true);
    std::printf("  }\n}\n");
    std::fprintf(stderr,
                 "smoke_barrier_tax: fingerprint %016llx (want %016llx), "
                 "sync_rounds %llu (want <= %llu) -> %s\n",
                 static_cast<unsigned long long>(gate.run.fingerprint),
                 static_cast<unsigned long long>(kArbiterFingerprint),
                 static_cast<unsigned long long>(gate.run.syncRounds),
                 static_cast<unsigned long long>(kLegacyGridRounds / 2),
                 barrierTaxOk ? "OK" : "BARRIER TAX REGRESSION");
    ok = flowsOk && arbiterOk && machineWideOk && barrierTaxOk;
    return ok ? 0 : 1;
  }

  // --- serial parity: the BENCH_flownet 100k tier through the Cluster path.
  {
    // Seed 0xCA1C10F + 2 is literally what perf_flownet uses for its
    // 100k-flow tier, so the event stream is identical.
    const FlowTier tier{1, 2048, 100000, 2, 0xCA1C10Full + 2};
    const RunResult r = runFlowTier(tier, 1, kWarmup);
    std::printf("  \"serial_100k\": {\n");
    std::printf("    \"flows\": 200000, \"note\": "
                "\"perf_flownet 100k tier, cluster path, 1 worker\",\n");
    printRun("    \"run\": ", 1, r, true);
    std::printf("  },\n");
    ok = ok && r.complete;
  }

  // --- thread scaling at 1M flows.
  {
    const FlowTier tier{16, 512, 15625, 4, 0xC1A57E2ull};
    const int totalFlows = static_cast<int>(tier.shards) *
                           tier.workersPerShard * tier.flowsPerWorker;
    std::printf("  \"cluster_1m\": {\n    \"flows\": %d, \"shards\": %zu,\n",
                totalFlows, tier.shards);
    const std::vector<unsigned> counts = {1, 2, 4, 8};
    std::vector<RunResult> runs;
    runs.reserve(counts.size());
    for (unsigned w : counts) {
      runs.push_back(runFlowTier(tier, w, kWarmup));
    }
    bool deterministic = true;
    std::printf("    \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RunResult& r = runs[i];
      ok = ok && r.complete;
      deterministic = deterministic && r.fingerprint == runs[0].fingerprint;
      const double speedup =
          r.wallSeconds > 0.0 ? runs[0].wallSeconds / r.wallSeconds : 0.0;
      std::printf(
          "      {\"workers\": %u, \"wall_s\": %.6f, \"cpu_s\": %.6f, "
          "\"events\": %llu, "
          "\"events_per_s\": %.0f, \"batches\": %llu, \"sync_rounds\": %llu, "
          "\"solo_rounds\": %llu, \"dispatched_shards\": %llu, "
          "\"max_queue_depth\": %zu, \"speedup_vs_1\": %.2f, "
          "\"fingerprint\": \"%016llx\", \"complete\": %s}%s\n",
          counts[i], r.wallSeconds, r.cpuSeconds,
          static_cast<unsigned long long>(r.events),
          r.eventsPerSecond, static_cast<unsigned long long>(r.dispatchBatches),
          static_cast<unsigned long long>(r.syncRounds),
          static_cast<unsigned long long>(r.soloRounds),
          static_cast<unsigned long long>(r.dispatchedShards),
          r.maxQueueDepth,
          speedup, static_cast<unsigned long long>(r.fingerprint),
          r.complete ? "true" : "false", i + 1 < runs.size() ? "," : "");
    }
    std::printf("    ],\n");
    std::printf("    \"deterministic_across_workers\": %s,\n",
                deterministic ? "true" : "false");
    // On a 1-hardware-thread container the speedup column measures
    // executor overhead, not parallelism (ROADMAP multi-core-baseline
    // caveat, machine-readable so dashboards cannot misread the curve).
    std::printf("    \"executor_overhead_only\": %s\n",
                std::thread::hardware_concurrency() <= 1 ? "true" : "false");
    std::printf("  },\n");
    ok = ok && deterministic;
  }

  // --- cross-shard coordination: GlobalArbiter at the barrier exchange.
  {
    const ArbiterTier tier;
    const std::vector<unsigned> counts = {1, 2, 4, 8};
    std::vector<ArbiterResult> runs;
    runs.reserve(counts.size());
    for (unsigned w : counts) {
      runs.push_back(runArbiterTier(tier, w));
    }
    bool deterministic = true;
    std::printf("  \"cluster_arbiter\": {\n");
    std::printf("    \"shards\": %zu, \"apps\": %d, \"phases_per_app\": %d,\n",
                tier.shards, static_cast<int>(tier.shards) * tier.appsPerShard,
                tier.phases);
    std::printf("    \"decisions\": %llu, \"messages_merged\": %llu, "
                "\"barrier_exchanges\": %llu, \"grants\": %llu, "
                "\"pauses\": %llu,\n",
                static_cast<unsigned long long>(runs[0].decisions),
                static_cast<unsigned long long>(runs[0].merged),
                static_cast<unsigned long long>(runs[0].exchanges),
                static_cast<unsigned long long>(runs[0].grants),
                static_cast<unsigned long long>(runs[0].pauses));
    std::printf("    \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const ArbiterResult& r = runs[i];
      ok = ok && r.run.complete;
      deterministic =
          deterministic && r.run.fingerprint == runs[0].run.fingerprint &&
          r.decisions == runs[0].decisions;
      printRun("      ", counts[i], r.run, i + 1 == runs.size());
    }
    std::printf("    ],\n");
    std::printf("    \"deterministic_across_workers\": %s\n",
                deterministic ? "true" : "false");
    std::printf("  },\n");
    ok = ok && deterministic;
  }

  // --- machine-wide Figure 4: aggregate throughput vs interferer size,
  // --- real writers on distinct shards sharing one PFS.
  {
    const MachineSpec machine = calciom::platform::grid5000Nancy();
    IorConfig appA;
    appA.name = "A";
    appA.processes = 336;
    appA.pattern = calciom::io::contiguousPattern(16u << 20);
    // 0.02 s horizon: a round of two-phase I/O takes ~1 s on this
    // machine, so barrier quantization stays a few percent and the
    // figure's axes measure interference, not the exchange.
    constexpr double kFigHorizon = 0.02;
    const ClusterRunResult aloneA =
        runMachineWideAlone(machine, appA, 1, kFigHorizon);
    const double aloneAThroughput = appThroughput(aloneA.apps[0]);

    std::printf("  \"cluster_fig04\": {\n");
    std::printf("    \"machine\": \"%s\", \"shards\": 3, "
                "\"a_cores\": 336, \"alone_a_mb_s\": %.0f,\n",
                machine.name.c_str(), aloneAThroughput / 1e6);
    std::printf("    \"points\": [\n");
    double slowdownAt8 = 0.0;
    double slowdownAt336 = 0.0;
    std::uint64_t fp1 = 0;  // the 336/336 worker-1 fingerprint, from the loop
    bool complete = aloneA.storage.requestsForwarded > 0;
    const int coresList[] = {8, 64, 336};
    for (std::size_t i = 0; i < 3; ++i) {
      const int cores = coresList[i];
      IorConfig appB;
      appB.name = "B";
      appB.processes = cores;
      appB.pattern = calciom::io::contiguousPattern(16u << 20);
      // B at 336 cores is physically identical to A alone (the name does
      // not affect the model) — reuse aloneA instead of re-simulating the
      // most expensive alone campaign.
      const ClusterRunResult aloneB =
          cores == 336 ? aloneA
                       : runMachineWideAlone(machine, appB, 1, kFigHorizon);
      const ClusterRunResult pair = runMachineWidePair(
          machine, appA, appB, PolicyKind::Interfere, 1, kFigHorizon);
      const double aggregate = pair.bytesDelivered / pair.spanSeconds;
      const double slowdown =
          appThroughput(aloneB.apps[0]) / appThroughput(pair.apps[1]);
      const std::uint64_t fp = machineWideFingerprint(pair);
      if (cores == 8) {
        slowdownAt8 = slowdown;
      }
      if (cores == 336) {
        slowdownAt336 = slowdown;
        fp1 = fp;
      }
      complete = complete && pair.storage.requestsForwarded > 0;
      std::printf("      {\"b_cores\": %d, \"aggregate_mb_s\": %.0f, "
                  "\"b_alone_mb_s\": %.0f, \"b_with_a_mb_s\": %.0f, "
                  "\"b_slowdown\": %.2f, \"fingerprint\": \"%016llx\"}%s\n",
                  cores, aggregate / 1e6,
                  appThroughput(aloneB.apps[0]) / 1e6,
                  appThroughput(pair.apps[1]) / 1e6, slowdown,
                  static_cast<unsigned long long>(fp), i + 1 < 3 ? "," : "");
    }
    std::printf("    ],\n");
    // Worker-count invariance on the largest pair (the worker-1 run is the
    // loop's 336-core point — no need to pay for it twice), decision
    // stream + delivered bytes folded in.
    IorConfig appB336 = appA;
    appB336.name = "B";
    std::uint64_t fp2 = machineWideFingerprint(runMachineWidePair(
        machine, appA, appB336, PolicyKind::Interfere, 2, kFigHorizon));
    std::uint64_t fp4 = machineWideFingerprint(runMachineWidePair(
        machine, appA, appB336, PolicyKind::Interfere, 4, kFigHorizon));
    const bool deterministic = fp1 == fp2 && fp1 == fp4;
    // Paper shape: B=8 is crushed (~6x), equal apps are not; interference
    // is machine-wide real, not an artifact of the serial runner.
    const bool shape =
        slowdownAt8 > 3.0 && slowdownAt336 < slowdownAt8 / 1.5;
    std::printf("    \"deterministic_across_workers\": %s,\n",
                deterministic ? "true" : "false");
    std::printf("    \"shape_ok\": %s\n  },\n", shape ? "true" : "false");
    ok = ok && deterministic && shape && complete;
  }

  // --- machine-wide Figure 9: the three policies on the 744/24 split,
  // --- B arriving second (dt = +2 s), cluster-wide.
  {
    const MachineSpec machine = calciom::platform::grid5000Rennes();
    IorConfig appA;
    appA.name = "A";
    appA.processes = 744;
    appA.pattern = calciom::io::stridedPattern(1u << 20, 8);
    IorConfig appB;
    appB.name = "B";
    appB.processes = 24;
    appB.pattern = calciom::io::stridedPattern(1u << 20, 8);
    appB.startOffset = 2.0;
    constexpr double kFigHorizon = 0.02;
    const ClusterRunResult aloneA =
        runMachineWideAlone(machine, appA, 1, kFigHorizon);
    IorConfig appBAlone = appB;
    appBAlone.startOffset = 0.0;
    const ClusterRunResult aloneB =
        runMachineWideAlone(machine, appBAlone, 1, kFigHorizon);

    std::printf("  \"cluster_fig09\": {\n");
    std::printf("    \"machine\": \"%s\", \"shards\": 3, "
                "\"split\": \"744/24\", \"dt_s\": 2.0,\n",
                machine.name.c_str());
    std::printf("    \"policies\": [\n");
    struct PolicyRow {
      const char* name;
      PolicyKind kind;
      double factorA;
      double factorB;
    } rows[] = {{"interfering", PolicyKind::Interfere, 0.0, 0.0},
                {"fcfs", PolicyKind::Fcfs, 0.0, 0.0},
                {"interruption", PolicyKind::Interrupt, 0.0, 0.0}};
    for (std::size_t i = 0; i < 3; ++i) {
      const ClusterRunResult pair = runMachineWidePair(
          machine, appA, appB, rows[i].kind, 1, kFigHorizon);
      rows[i].factorA =
          pair.apps[0].totalIoSeconds() / aloneA.apps[0].totalIoSeconds();
      rows[i].factorB =
          pair.apps[1].totalIoSeconds() / aloneB.apps[0].totalIoSeconds();
      std::printf("      {\"policy\": \"%s\", \"factor_a\": %.2f, "
                  "\"factor_b\": %.2f, \"pauses\": %zu, "
                  "\"fingerprint\": \"%016llx\"}%s\n",
                  rows[i].name, rows[i].factorA, rows[i].factorB,
                  pair.pausesIssued,
                  static_cast<unsigned long long>(machineWideFingerprint(pair)),
                  i + 1 < 3 ? "," : "");
    }
    std::printf("    ],\n");
    // Paper shape (Fig 9b/9d): FCFS strands the small app behind the big
    // one; interruption rescues it at near-zero cost for the big app.
    const bool shape = rows[1].factorB > 2.0 * rows[2].factorB &&
                       rows[2].factorB < 2.5 && rows[2].factorA < 1.3 &&
                       rows[0].factorB > 2.0;
    std::printf("    \"shape_ok\": %s\n  },\n", shape ? "true" : "false");
    ok = ok && shape;
  }

  // --- machine-wide Figure 10: interruption granularity, cluster-wide.
  // --- A writes 4 files, B one file; interruption honoured between files
  // --- (application level) or between collective-buffering rounds (ADIO
  // --- level). File-level yields the paper's "saw": B waits out A's
  // --- current file, so B's time sweeps a file period as dt moves.
  {
    MachineSpec machine = calciom::platform::surveyor();
    // Small collective buffers so one file spans several rounds: this is
    // what makes the two hook placements differ (same trick as the serial
    // fig10 bench).
    machine.cbBufferBytes = 4ull << 20;
    IorConfig appA;
    appA.name = "A";
    appA.processes = 256;
    appA.pattern = calciom::io::contiguousPattern(4u << 20);
    appA.filesPerPhase = 4;
    IorConfig appB;
    appB.name = "B";
    appB.processes = 256;
    appB.pattern = calciom::io::contiguousPattern(4u << 20);
    appB.filesPerPhase = 1;
    constexpr double kFigHorizon = 0.02;
    using calciom::core::HookGranularity;

    const ClusterRunResult aloneA =
        runMachineWideAlone(machine, appA, 1, kFigHorizon);
    const ClusterRunResult aloneB =
        runMachineWideAlone(machine, appB, 1, kFigHorizon);
    const double aloneASeconds = aloneA.apps[0].totalIoSeconds();
    const double aloneBSeconds = aloneB.apps[0].totalIoSeconds();
    const double filePeriod = aloneASeconds / 4.0;

    std::printf("  \"cluster_fig10\": {\n");
    std::printf("    \"machine\": \"%s\", \"shards\": 3, \"split\": "
                "\"256/256\", \"a_files\": 4,\n",
                machine.name.c_str());
    std::printf("    \"alone_a_s\": %.3f, \"alone_b_s\": %.3f, "
                "\"file_period_s\": %.3f,\n",
                aloneASeconds, aloneBSeconds, filePeriod);
    // Sweep ~1.5 file periods so the file-level saw rises and resets.
    constexpr int kPoints = 8;
    double fileB[kPoints];
    double roundB[kPoints];
    std::printf("    \"points\": [\n");
    for (int i = 0; i < kPoints; ++i) {
      const double dt = 1.5 * filePeriod * static_cast<double>(i) /
                        static_cast<double>(kPoints - 1);
      IorConfig b = appB;
      b.startOffset = dt;
      const ClusterRunResult file =
          runMachineWidePair(machine, appA, b, PolicyKind::Interrupt, 1,
                             kFigHorizon, HookGranularity::PerFile);
      const ClusterRunResult round =
          runMachineWidePair(machine, appA, b, PolicyKind::Interrupt, 1,
                             kFigHorizon, HookGranularity::PerRound);
      fileB[i] = file.apps[1].totalIoSeconds();
      roundB[i] = round.apps[1].totalIoSeconds();
      std::printf("      {\"dt_s\": %.3f, \"b_file_level_s\": %.3f, "
                  "\"b_round_level_s\": %.3f, \"file_pauses\": %zu, "
                  "\"round_pauses\": %zu}%s\n",
                  dt, fileB[i], roundB[i], file.pausesIssued,
                  round.pausesIssued, i + 1 < kPoints ? "," : "");
    }
    std::printf("    ],\n");
    double fileBMax = fileB[0];
    double fileBMin = fileB[0];
    double roundBMax = roundB[0];
    for (int i = 1; i < kPoints; ++i) {
      fileBMax = std::max(fileBMax, fileB[i]);
      fileBMin = std::min(fileBMin, fileB[i]);
      roundBMax = std::max(roundBMax, roundB[i]);
    }
    // Worker-count invariance on the dt=0 file-level pair.
    const std::uint64_t ffp1 = machineWideFingerprint(
        runMachineWidePair(machine, appA, appB, PolicyKind::Interrupt, 1,
                           kFigHorizon, HookGranularity::PerFile));
    const std::uint64_t ffp2 = machineWideFingerprint(
        runMachineWidePair(machine, appA, appB, PolicyKind::Interrupt, 2,
                           kFigHorizon, HookGranularity::PerFile));
    const bool deterministic = ffp1 == ffp2;
    // Paper shape (Fig 10a/b): round-level frees B almost immediately at
    // every dt; file-level makes B wait out A's current file somewhere in
    // the sweep, with about a file period of amplitude.
    const bool shape = roundBMax < aloneBSeconds + 0.75 * filePeriod &&
                       fileBMax > aloneBSeconds + 0.6 * filePeriod &&
                       fileBMax - fileBMin > 0.5 * filePeriod;
    std::printf("    \"b_file_level_max_s\": %.3f, "
                "\"b_file_level_min_s\": %.3f, "
                "\"b_round_level_max_s\": %.3f,\n",
                fileBMax, fileBMin, roundBMax);
    std::printf("    \"deterministic_across_workers\": %s,\n",
                deterministic ? "true" : "false");
    std::printf("    \"shape_ok\": %s\n  },\n", shape ? "true" : "false");
    ok = ok && deterministic && shape;
  }

  // --- storage transition-reschedule profile at 2048 servers.
  {
    const StorageTier tier;
    const StorageResult sr = runStorageTier(tier, 1);
    const double transitionShare =
        sr.totalScheduled > 0
            ? static_cast<double>(sr.transitionsScheduled) /
                  static_cast<double>(sr.totalScheduled)
            : 0.0;
    const double staleShare =
        sr.transitionsScheduled > 0
            ? static_cast<double>(sr.transitionsStale) /
                  static_cast<double>(sr.transitionsScheduled)
            : 0.0;
    std::printf("  \"storage_2k\": {\n");
    std::printf("    \"servers\": %d, \"writers\": %d,\n",
                static_cast<int>(tier.shards) * tier.serversPerShard,
                static_cast<int>(tier.shards) * tier.serversPerShard *
                    tier.appsPerServer);
    printRun("    \"run\": ", 1, sr.run, false);
    std::printf("    \"transitions\": {\"scheduled\": %llu, \"fired\": %llu, "
                "\"stale\": %llu, \"share_of_scheduled\": %.4f, "
                "\"stale_fraction\": %.4f}\n",
                static_cast<unsigned long long>(sr.transitionsScheduled),
                static_cast<unsigned long long>(sr.transitionsFired),
                static_cast<unsigned long long>(sr.transitionsStale),
                transitionShare, staleShare);
    std::printf("  }\n");
    ok = ok && sr.run.complete;
  }

  std::printf("}\n");
  return ok ? 0 : 1;
}
