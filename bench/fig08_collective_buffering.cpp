// Figure 8: strided pattern triggering collective buffering (two-phase
// I/O). (a) delta-graph of interfering vs FCFS; (b) phase breakdown: the
// shuffle (communication) phase runs on the application-private
// interconnect and is almost immune to interference, while the write phase
// absorbs all of it -- so serializing penalizes the second app more than
// pure interference does.

#include <iostream>

#include "analysis/delta.hpp"
#include "analysis/scenario.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

namespace {

using namespace calciom;

analysis::ScenarioConfig makeConfig(core::PolicyKind policy) {
  analysis::ScenarioConfig cfg;
  cfg.machine = platform::surveyor();
  cfg.policy = policy;
  cfg.appA = workload::IorConfig{.name = "A",
                                 .processes = 2048,
                                 .pattern = io::stridedPattern(1 << 20, 16)};
  cfg.appB = workload::IorConfig{.name = "B",
                                 .processes = 2048,
                                 .pattern = io::stridedPattern(1 << 20, 16)};
  return cfg;
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 8(a,b)", "Collective buffering under interference",
      "surveyor: 2 x 2048 procs, 16 MB/proc strided (16 x 1 MB), two-phase "
      "I/O with shuffle + write rounds");

  const auto dts = analysis::linspace(-40.0, 40.0, 17);
  const analysis::DeltaGraph interfering =
      analysis::sweepDelta(makeConfig(core::PolicyKind::Interfere), dts);
  const analysis::DeltaGraph fcfs =
      analysis::sweepDelta(makeConfig(core::PolicyKind::Fcfs), dts);

  analysis::TextTable graph({"dt (s)", "interfering A (s)", "fcfs A (s)",
                             "fcfs B (s)", "expected (s)"});
  for (std::size_t i = 0; i < dts.size(); ++i) {
    graph.addRow({analysis::fmt(dts[i], 0),
                  analysis::fmt(interfering.points[i].ioTimeA, 2),
                  analysis::fmt(fcfs.points[i].ioTimeA, 2),
                  analysis::fmt(fcfs.points[i].ioTimeB, 2),
                  analysis::fmt(interfering.points[i].expectedA, 2)});
  }
  std::cout << "Fig 8(a) -- delta-graph (alone "
            << analysis::fmt(interfering.aloneA, 2) << "s)\n"
            << graph.str() << '\n';

  // ---- (b) phase breakdown: comm vs write ------------------------------
  auto phaseBreakdown = [&](double dt, bool contended)
      -> std::pair<double, double> {
    if (!contended) {
      const auto alone =
          analysis::runAlone(makeConfig(core::PolicyKind::Interfere).machine,
                             makeConfig(core::PolicyKind::Interfere).appA);
      return {alone.iterations[0].commSeconds(),
              alone.iterations[0].writeSeconds()};
    }
    analysis::ScenarioConfig cfg = makeConfig(core::PolicyKind::Interfere);
    cfg.dt = dt;
    const analysis::PairResult r = analysis::runPair(cfg);
    return {r.a.iterations[0].commSeconds(),
            r.a.iterations[0].writeSeconds()};
  };
  const auto [commAlone, writeAlone] = phaseBreakdown(0.0, false);
  const auto [commDt0, writeDt0] = phaseBreakdown(0.0, true);
  const auto [commDt15, writeDt15] = phaseBreakdown(15.0, true);

  analysis::TextTable phases({"case", "comm (s)", "write (s)"});
  phases.addRow({"no interference", analysis::fmt(commAlone, 2),
                 analysis::fmt(writeAlone, 2)});
  phases.addRow({"dt = 0", analysis::fmt(commDt0, 2),
                 analysis::fmt(writeDt0, 2)});
  phases.addRow({"dt = 15", analysis::fmt(commDt15, 2),
                 analysis::fmt(writeDt15, 2)});
  std::cout << "Fig 8(b) -- phases of collective buffering (app A)\n"
            << phases.str() << '\n';

  benchutil::ShapeCheck check;
  check.expect("two-phase is active: comm phase is a significant share",
               commAlone > 0.25 * writeAlone);
  check.expectNear("comm phase almost unimpacted at dt=0",
                   commDt0 / commAlone, 1.0, 0.10);
  check.expect("write phase absorbs the interference (>= 1.5x)",
               writeDt0 / writeAlone > 1.5);
  // Because only the write share suffers, FCFS (which delays the whole
  // phase of the second app) costs the second app more than interference
  // does near dt=0.
  const std::size_t mid = dts.size() / 2;
  check.expect("FCFS penalizes the 2nd app more than interfering here",
               fcfs.points[mid + 1].ioTimeB >
                   interfering.points[mid + 1].ioTimeB);
  check.expect("FCFS keeps the first app at its alone time",
               fcfs.points[mid + 1].ioTimeA < fcfs.aloneA * 1.05);
  return check.finish();
}
