// Figure 11: CALCioM's dynamic choice. Same scenario as Fig 10 (A: 4 files,
// B: 1 file, both on 2048 cores); the metric is the total number of CPU
// seconds wasted in I/O, f = sum_X N_X * T_X. The paper derives the rule
// "interrupt A iff dt < T_A(alone) - T_B(alone)" and shows CALCioM always
// improves the metric over uncoordinated interference.

#include <iostream>
#include <vector>

#include "analysis/delta.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "io/pattern.hpp"
#include "platform/presets.hpp"

namespace {

using namespace calciom;

analysis::ScenarioConfig makeConfig(core::PolicyKind policy) {
  analysis::ScenarioConfig cfg;
  cfg.machine = platform::surveyor();
  cfg.machine.cbBufferBytes = 4ull << 20;
  cfg.policy = policy;
  cfg.metric = std::make_shared<core::CpuSecondsWasted>();
  cfg.appA = workload::IorConfig{.name = "A",
                                 .processes = 2048,
                                 .pattern = io::contiguousPattern(4 << 20),
                                 .filesPerPhase = 4};
  cfg.appB = workload::IorConfig{.name = "B",
                                 .processes = 2048,
                                 .pattern = io::contiguousPattern(4 << 20),
                                 .filesPerPhase = 1};
  return cfg;
}

/// CPU seconds per core wasted in I/O: f / (N_A + N_B).
double perCoreCost(const analysis::DeltaPoint& p) {
  return (2048.0 * p.ioTimeA + 2048.0 * p.ioTimeB) / (2048.0 + 2048.0);
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 11", "Dynamic strategy selection vs uncoordinated interference",
      "surveyor: Fig 10 scenario; metric f = sum N_X * T_X (CPU seconds "
      "wasted in I/O); CALCioM picks FCFS or interruption per dt");

  const auto dts = analysis::linspace(0.0, 6.0, 13);
  const analysis::DeltaGraph interfering =
      analysis::sweepDelta(makeConfig(core::PolicyKind::Interfere), dts);
  const analysis::DeltaGraph dynamic =
      analysis::sweepDelta(makeConfig(core::PolicyKind::Dynamic), dts);

  const double dtStar = dynamic.aloneA - dynamic.aloneB;
  analysis::TextTable table({"dt (s)", "without CALCioM (s/core)",
                             "with CALCioM (s/core)", "chosen strategy"});
  for (std::size_t i = 0; i < dts.size(); ++i) {
    const auto& pd = dynamic.points[i];
    table.addRow({analysis::fmt(dts[i], 1),
                  analysis::fmt(perCoreCost(interfering.points[i]), 2),
                  analysis::fmt(perCoreCost(pd), 2),
                  pd.hasDecision ? core::toString(pd.decision) : "-"});
  }
  std::cout << table.str() << '\n'
            << "alone: A " << analysis::fmt(dynamic.aloneA, 2) << "s, B "
            << analysis::fmt(dynamic.aloneB, 2)
            << "s; analytic switch point dt* = T_A - T_B = "
            << analysis::fmt(dtStar, 2) << "s\n\n";

  benchutil::ShapeCheck check;
  // CALCioM never loses to uncoordinated interference on its metric.
  bool alwaysBetter = true;
  double worstGap = 0.0;
  for (std::size_t i = 0; i < dts.size(); ++i) {
    const double with = perCoreCost(dynamic.points[i]);
    const double without = perCoreCost(interfering.points[i]);
    if (with > without * 1.03) {
      alwaysBetter = false;
    }
    worstGap = std::max(worstGap, with - without);
  }
  check.expect("CALCioM improves (or matches) the metric at every dt",
               alwaysBetter);
  // The chosen strategy follows the paper's closed-form rule around dt*.
  bool ruleHolds = true;
  for (const auto& p : dynamic.points) {
    if (!p.hasDecision) {
      continue;
    }
    // Allow one round of slack around the analytic crossover: progress is
    // reported at round boundaries.
    if (p.dt < dtStar - 0.6 && p.decision != core::Action::Interrupt) {
      ruleHolds = false;
    }
    if (p.dt > dtStar + 0.6 && p.decision != core::Action::Queue) {
      ruleHolds = false;
    }
  }
  check.expect("decision switches interrupt->queue at dt* = T_A - T_B",
               ruleHolds);
  // Both strategies appear across the sweep.
  int interrupts = 0;
  int queues = 0;
  for (const auto& p : dynamic.points) {
    if (p.hasDecision && p.decision == core::Action::Interrupt) {
      ++interrupts;
    }
    if (p.hasDecision && p.decision == core::Action::Queue) {
      ++queues;
    }
  }
  check.expect("the sweep exercises both interruption and serialization",
               interrupts >= 3 && queues >= 2);
  return check.finish();
}
