#pragma once

/// \file bench_util.hpp
/// Shared scaffolding for the figure-reproduction binaries: headers,
/// footers, and shape checks. Every bench prints the series the paper
/// plots, then verifies the *qualitative* claims (who wins, monotonicity,
/// crossovers, rough factors) and exits non-zero on a violation, so the
/// bench suite doubles as a regression harness for the reproduction.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>

namespace benchutil {

/// Hardware concurrency as the benches report it (0 is normalized to 1, so
/// "executor_overhead_only" style caveats can divide by it).
inline unsigned hardwareThreads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

/// Opening lines of a perf bench's JSON object: bench name, mode, the host's
/// hardware_threads (machine-readable form of the ROADMAP
/// "executor_overhead_only" caveat — on a 1-thread container a speedup
/// column measures scheduling overhead, not parallelism), and the fault-plan
/// seed the run was driven by (0 = fault-free), so a degradation curve can
/// be replayed bit-exactly from the header alone.
inline void jsonHeader(const char* bench, const char* mode,
                       std::uint64_t faultSeed = 0) {
  std::printf("{\n  \"bench\": \"%s\",\n  \"mode\": \"%s\",\n", bench, mode);
  std::printf("  \"hardware_threads\": %u,\n", hardwareThreads());
  std::printf("  \"fault_seed\": %llu,\n",
              static_cast<unsigned long long>(faultSeed));
}

inline void header(const std::string& figure, const std::string& title,
                   const std::string& setup) {
  std::cout << "==============================================================="
               "=================\n"
            << figure << " -- " << title << '\n'
            << "setup: " << setup << '\n'
            << "==============================================================="
               "=================\n";
}

/// Collects named pass/fail assertions on the reproduced shape.
class ShapeCheck {
 public:
  void expect(const std::string& what, bool ok) {
    std::cout << (ok ? "  [shape OK]   " : "  [shape FAIL] ") << what << '\n';
    if (!ok) {
      ++failures_;
    }
  }
  void expectNear(const std::string& what, double value, double target,
                  double tolerance) {
    const bool ok = value >= target - tolerance && value <= target + tolerance;
    std::cout << (ok ? "  [shape OK]   " : "  [shape FAIL] ") << what
              << " (value " << value << ", target " << target << " +/- "
              << tolerance << ")\n";
    if (!ok) {
      ++failures_;
    }
  }

  /// Prints the verdict and returns the process exit code.
  [[nodiscard]] int finish() const {
    std::cout << (failures_ == 0
                      ? "shape-check: all assertions passed\n"
                      : "shape-check: FAILURES — the reproduction drifted\n");
    return failures_ == 0 ? 0 : 1;
  }

 private:
  int failures_ = 0;
};

}  // namespace benchutil
