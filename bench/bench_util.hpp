#pragma once

/// \file bench_util.hpp
/// Shared scaffolding for the figure-reproduction binaries: headers,
/// footers, and shape checks. Every bench prints the series the paper
/// plots, then verifies the *qualitative* claims (who wins, monotonicity,
/// crossovers, rough factors) and exits non-zero on a violation, so the
/// bench suite doubles as a regression harness for the reproduction.

#include <cstdio>
#include <iostream>
#include <string>

namespace benchutil {

inline void header(const std::string& figure, const std::string& title,
                   const std::string& setup) {
  std::cout << "==============================================================="
               "=================\n"
            << figure << " -- " << title << '\n'
            << "setup: " << setup << '\n'
            << "==============================================================="
               "=================\n";
}

/// Collects named pass/fail assertions on the reproduced shape.
class ShapeCheck {
 public:
  void expect(const std::string& what, bool ok) {
    std::cout << (ok ? "  [shape OK]   " : "  [shape FAIL] ") << what << '\n';
    if (!ok) {
      ++failures_;
    }
  }
  void expectNear(const std::string& what, double value, double target,
                  double tolerance) {
    const bool ok = value >= target - tolerance && value <= target + tolerance;
    std::cout << (ok ? "  [shape OK]   " : "  [shape FAIL] ") << what
              << " (value " << value << ", target " << target << " +/- "
              << tolerance << ")\n";
    if (!ok) {
      ++failures_;
    }
  }

  /// Prints the verdict and returns the process exit code.
  [[nodiscard]] int finish() const {
    std::cout << (failures_ == 0
                      ? "shape-check: all assertions passed\n"
                      : "shape-check: FAILURES — the reproduction drifted\n");
    return failures_ == 0 ? 0 : 1;
  }

 private:
  int failures_ = 0;
};

}  // namespace benchutil
