/// detlint CLI: `detlint <path>...` scans each path (file or directory,
/// recursively) and prints violations as `file:line: [RULE] message`.
/// Exit status: 0 clean, 1 violations found, 2 usage error.

#include <cstdio>
#include <string>

#include "tools/detlint/lint.hpp"

int main(int argc, char** argv) {
  bool quiet = false;
  detlint::RunResult total;
  int paths = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet" || arg == "-q") {
      quiet = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: detlint [--quiet] <path>...\n"
          "Scans C++ sources for determinism-rule violations "
          "(src/sim/README.md).\nChecks:\n");
      for (const char* rule :
           {"DET1", "DET2", "DET3", "DET4", "DET5", "DET6", "DET7"}) {
        std::printf("  %s  %s\n", rule, detlint::describeRule(rule).c_str());
      }
      std::printf(
          "Suppress a finding in place with\n"
          "  // detlint: allow(RULE-ID) <mandatory reason>\n"
          "on the flagged line or in the comment block above it.\n");
      return 0;
    }
    ++paths;
    detlint::merge(total, detlint::lintTree(arg));
  }
  if (paths == 0) {
    std::fprintf(stderr, "detlint: no paths given (try --help)\n");
    return 2;
  }
  for (const detlint::Violation& v : total.violations) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "detlint: %d file(s) scanned, %zu violation(s), "
                 "%d suppressed\n",
                 total.filesScanned, total.violations.size(),
                 total.suppressed);
  }
  return total.violations.empty() ? 0 : 1;
}
