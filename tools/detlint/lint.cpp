#include "tools/detlint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string_view>

namespace detlint {

namespace {

namespace fs = std::filesystem;

const std::set<std::string>& zoneComponents() {
  static const std::set<std::string> kZones = {
      "sim", "net",     "calciom",  "platform", "pfs",
      "storage", "workload", "fault", "mpi", "io"};
  return kZones;
}

std::vector<std::string> pathComponents(const std::string& path) {
  std::vector<std::string> out;
  std::string part;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!part.empty()) {
        out.push_back(part);
      }
      part.clear();
    } else {
      part += c;
    }
  }
  if (!part.empty()) {
    out.push_back(part);
  }
  return out;
}

/// One scanned line, split into channels so each check looks only at the
/// text class it cares about.
struct LineView {
  std::string code;         // comments removed, string/char literals blanked
  std::string codeStrings;  // comments removed, literals kept (for "%p")
  std::string comment;      // concatenated comment text on this line
};

/// Comment- and string-aware splitter. Tracks block comments across lines;
/// raw strings are not understood (documented limitation).
std::vector<LineView> splitLines(const std::string& contents) {
  enum class Mode { Code, Str, Chr, LineComment, BlockComment };
  std::vector<LineView> lines;
  LineView cur;
  Mode mode = Mode::Code;
  const std::size_t n = contents.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = contents[i];
    if (c == '\n') {
      if (mode == Mode::LineComment) {
        mode = Mode::Code;
      }
      // Unterminated string literals cannot span lines (no raw-string
      // support); recover rather than swallowing the rest of the file.
      if (mode == Mode::Str || mode == Mode::Chr) {
        mode = Mode::Code;
      }
      lines.push_back(std::move(cur));
      cur = LineView{};
      continue;
    }
    switch (mode) {
      case Mode::Code:
        if (c == '/' && i + 1 < n && contents[i + 1] == '/') {
          mode = Mode::LineComment;
          ++i;
        } else if (c == '/' && i + 1 < n && contents[i + 1] == '*') {
          mode = Mode::BlockComment;
          ++i;
        } else if (c == '"') {
          mode = Mode::Str;
          cur.code += ' ';
          cur.codeStrings += c;
        } else if (c == '\'') {
          mode = Mode::Chr;
          cur.code += ' ';
          cur.codeStrings += c;
        } else {
          cur.code += c;
          cur.codeStrings += c;
        }
        break;
      case Mode::Str:
      case Mode::Chr:
        cur.code += ' ';
        cur.codeStrings += c;
        if (c == '\\' && i + 1 < n && contents[i + 1] != '\n') {
          cur.codeStrings += contents[i + 1];
          cur.code += ' ';
          ++i;
        } else if ((mode == Mode::Str && c == '"') ||
                   (mode == Mode::Chr && c == '\'')) {
          mode = Mode::Code;
        }
        break;
      case Mode::LineComment:
        cur.comment += c;
        break;
      case Mode::BlockComment:
        if (c == '*' && i + 1 < n && contents[i + 1] == '/') {
          mode = Mode::Code;
          ++i;
        } else {
          cur.comment += c;
        }
        break;
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

bool isBlank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c) != 0; });
}

/// Extracts the rule ids of *active* suppressions in a comment: each
/// `detlint: allow(ID[, ID...])` followed by a non-empty reason.
std::vector<std::string> activeAllows(const std::string& comment) {
  static const std::regex kAllow(
      R"(detlint:\s*allow\(\s*([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)\s*\))");
  std::vector<std::string> out;
  auto begin = std::sregex_iterator(comment.begin(), comment.end(), kAllow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    // The reason is whatever follows the closing paren, up to the next
    // allow() if any. Empty reason -> inactive: the suppression must say
    // *why* the match is safe.
    const std::string tail = comment.substr(
        static_cast<std::size_t>(it->position() + it->length()));
    const std::size_t next = tail.find("detlint:");
    const std::string reason = tail.substr(0, next);
    if (isBlank(reason)) {
      continue;
    }
    std::string ids = (*it)[1].str();
    std::string id;
    for (const char c : ids + ",") {
      if (c == ',' || std::isspace(static_cast<unsigned char>(c)) != 0) {
        if (!id.empty()) {
          out.push_back(id);
        }
        id.clear();
      } else {
        id += c;
      }
    }
  }
  return out;
}

struct Check {
  const char* rule;
  std::regex pattern;
  const char* message;
  bool stringsChannel;  // match against codeStrings instead of code
};

const std::vector<Check>& zoneChecks() {
  static const std::vector<Check> kChecks = [] {
    std::vector<Check> v;
    v.push_back({"DET1", std::regex(R"(\bthread_local\b)"),
                 "thread_local state in a deterministic zone: per-thread "
                 "values vary with worker scheduling (rule 1)",
                 false});
    v.push_back({"DET2",
                 std::regex(R"(std::random_device|\b(rand|srand|getenv)\s*\()"),
                 "ambient entropy: all randomness must come from the "
                 "per-shard seeded stream (rule 2)",
                 false});
    v.push_back(
        {"DET3",
         std::regex(
             R"(std::chrono::(steady_clock|system_clock|high_resolution_clock))"
             R"(|\b(gettimeofday|clock_gettime)\s*\()"
             R"(|std::(time|clock)\s*\()"
             R"(|(^|[^\w.:>])(time|clock)\s*\()"),
         "wall-clock access: deterministic code sees only simulated time; "
         "wall timing goes through sim/wall_timer.hpp (rule 3)",
         false});
    v.push_back({"DET4",
                 std::regex(R"(std::unordered_(map|set|multimap|multiset)\b)"),
                 "unordered container in a deterministic zone: iteration "
                 "order is hash-seed and address dependent (rule 4); use an "
                 "ordered/indexed container, or allow() with proof it is "
                 "never iterated",
                 false});
    v.push_back({"DET6",
                 std::regex(R"(reinterpret_cast\s*<\s*(std::)?u?intptr_t\b)"
                            R"(|std::hash<[^>]*\*\s*>)"),
                 "pointer identity in computed state: addresses differ run "
                 "to run, so nothing hashed, serialized or ordered may "
                 "depend on them (rule 6)",
                 false});
    v.push_back({"DET6", std::regex(R"(%p\b)"),
                 "\"%p\" formats a raw address: run-to-run varying output "
                 "breaks fingerprint comparison (rule 6)",
                 true});
    return v;
  }();
  return kChecks;
}

const Check& faultRngCheck() {
  static const Check kCheck{
      "DET5", std::regex(R"(\brng\s*\(\s*\))"),
      "Engine::rng() draw in the fault layer: chaos decisions must be pure "
      "hashes of (seed, round, id), never stream draws whose position "
      "depends on event interleaving (rule 5)",
      false};
  return kCheck;
}

bool mentionsRule7(const std::string& comment) {
  static const std::regex kRule7(R"([Rr]ule\s*7)");
  return std::regex_search(comment, kRule7);
}

void runChecksOnLine(const std::string& path, int lineNo, const LineView& lv,
                     bool zone, bool faultZone, bool clockShim,
                     const std::string& docBlock,
                     const std::vector<std::string>& allows, RunResult& out) {
  const auto allowed = [&allows](const char* rule) {
    return std::find(allows.begin(), allows.end(), rule) != allows.end();
  };
  const auto report = [&](const Check& check) {
    if (allowed(check.rule)) {
      ++out.suppressed;
    } else {
      out.violations.push_back(
          Violation{path, lineNo, check.rule, check.message});
    }
  };

  if (zone) {
    for (const Check& check : zoneChecks()) {
      if (std::string_view(check.rule) == "DET3" && clockShim) {
        continue;
      }
      const std::string& text = check.stringsChannel ? lv.codeStrings : lv.code;
      if (std::regex_search(text, check.pattern)) {
        report(check);
      }
    }
    if (faultZone && std::regex_search(lv.code, faultRngCheck().pattern)) {
      report(faultRngCheck());
    }
  }

  // DET7 applies everywhere scanned: an override of the horizon-vote hook
  // is a determinism liability wherever it lives.
  static const std::regex kVoteOverride(
      R"(\bnextBarrierNeededBy\s*\([^)]*\)[^;{]*\boverride\b)");
  if (std::regex_search(lv.code, kVoteOverride)) {
    if (!mentionsRule7(docBlock) && !mentionsRule7(lv.comment)) {
      if (allowed("DET7")) {
        ++out.suppressed;
      } else {
        out.violations.push_back(Violation{
            path, lineNo, "DET7",
            "nextBarrierNeededBy override without a 'rule 7' citation: the "
            "doc comment must acknowledge that the vote is a pure function "
            "of barrier-time simulated state (rule 7)"});
      }
    }
  }
}

}  // namespace

bool inDeterministicZone(const std::string& path) {
  for (const std::string& comp : pathComponents(path)) {
    if (zoneComponents().contains(comp)) {
      return true;
    }
  }
  return false;
}

bool isWallClockShim(const std::string& path) {
  const std::vector<std::string> comps = pathComponents(path);
  const std::size_t n = comps.size();
  return n >= 2 && comps[n - 2] == "sim" && comps[n - 1] == "wall_timer.hpp";
}

bool isSourceFile(const std::string& path) {
  static const std::array<const char*, 7> kExts = {
      ".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".ipp"};
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) {
    return false;
  }
  const std::string ext = path.substr(dot);
  return std::find(kExts.begin(), kExts.end(), ext) != kExts.end();
}

RunResult lintFile(const std::string& path, const std::string& contents) {
  RunResult out;
  out.filesScanned = 1;
  const bool zone = inDeterministicZone(path);
  const bool clockShim = isWallClockShim(path);
  bool faultZone = false;
  for (const std::string& comp : pathComponents(path)) {
    if (comp == "fault") {
      faultZone = true;
    }
  }

  const std::vector<LineView> lines = splitLines(contents);
  // Suppressions and rule-7 citations in the comment block immediately
  // above a line apply to that line; a blank line breaks the association.
  std::vector<std::string> pendingAllows;
  std::string docBlock;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const LineView& lv = lines[i];
    const bool hasCode = !isBlank(lv.code);
    const bool hasComment = !lv.comment.empty();
    if (!hasCode) {
      if (hasComment) {
        docBlock += lv.comment;
        docBlock += '\n';
        for (std::string& id : activeAllows(lv.comment)) {
          pendingAllows.push_back(std::move(id));
        }
      } else {
        pendingAllows.clear();
        docBlock.clear();
      }
      continue;
    }
    std::vector<std::string> allows = pendingAllows;
    for (std::string& id : activeAllows(lv.comment)) {
      allows.push_back(std::move(id));
    }
    runChecksOnLine(path, static_cast<int>(i + 1), lv, zone, faultZone,
                    clockShim, docBlock, allows, out);
    pendingAllows.clear();
    docBlock.clear();
  }
  return out;
}

RunResult lintTree(const std::string& root) {
  RunResult out;
  std::error_code ec;
  const fs::file_status st = fs::status(root, ec);
  if (ec || st.type() == fs::file_type::not_found) {
    out.violations.push_back(
        Violation{root, 0, "IO", "path does not exist or is unreadable"});
    return out;
  }
  std::vector<std::string> files;
  if (fs::is_directory(st)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && isSourceFile(entry.path().string())) {
        files.push_back(entry.path().string());
      }
    }
  } else {
    files.push_back(root);
  }
  // Deterministic report order regardless of directory enumeration order —
  // the linter holds itself to rule 4.
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      out.violations.push_back(Violation{file, 0, "IO", "failed to read"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    merge(out, lintFile(file, buf.str()));
  }
  return out;
}

void merge(RunResult& total, RunResult part) {
  total.suppressed += part.suppressed;
  total.filesScanned += part.filesScanned;
  std::move(part.violations.begin(), part.violations.end(),
            std::back_inserter(total.violations));
}

std::string describeRule(const std::string& rule) {
  if (rule == "DET1") {
    return "no thread_local state in deterministic zones (rule 1)";
  }
  if (rule == "DET2") {
    return "no ambient entropy: random_device/rand/srand/getenv (rule 2)";
  }
  if (rule == "DET3") {
    return "no wall clocks outside sim/wall_timer.hpp (rule 3)";
  }
  if (rule == "DET4") {
    return "no unordered containers in deterministic zones (rule 4)";
  }
  if (rule == "DET5") {
    return "no Engine::rng() draws in the fault layer (rule 5)";
  }
  if (rule == "DET6") {
    return "no pointer identity in hashed/serialized state (rule 6)";
  }
  if (rule == "DET7") {
    return "horizon-vote overrides must cite rule 7";
  }
  return "unknown rule";
}

}  // namespace detlint
