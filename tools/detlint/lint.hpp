#pragma once

/// \file lint.hpp
/// detlint: a token/regex-level determinism linter for the CALCioM tree.
///
/// The simulator's reproducibility contract is written down as seven rules
/// in src/sim/README.md. Most of them are enforced at runtime (fingerprints,
/// shard-affinity checks), but the cheapest place to catch a violation is
/// before it runs: a wall-clock read or an iterated unordered_map in a
/// deterministic zone is wrong *syntactically*, no execution needed. detlint
/// scans source text — comment- and string-aware, but deliberately not a
/// compiler — and flags the constructs that cannot appear in deterministic
/// code:
///
///   DET1  `thread_local` state            (rule 1, shard locality)
///   DET2  ambient entropy: random_device, rand/srand, getenv  (rule 2)
///   DET3  wall clocks: std::chrono clocks, time(), gettimeofday, ...
///         (rule 3; the single whitelisted access point is
///         src/sim/wall_timer.hpp)
///   DET4  std::unordered_{map,set,multimap,multiset}          (rule 4)
///   DET5  Engine::rng() draws inside the fault layer          (rule 5;
///         chaos decisions must be pure hashes, not stream draws)
///   DET6  pointer identity in hashed/serialized state:
///         reinterpret_cast<uintptr_t>, std::hash<T*>, "%p"    (rule 6)
///   DET7  every `nextBarrierNeededBy ... override` declaration must cite
///         "rule 7" in its doc comment, acknowledging the purity contract
///
/// DET1–DET6 fire only inside *deterministic zones* — directories whose
/// code runs under the simulated clock. DET7 applies everywhere scanned.
///
/// False positives are silenced in place:
///
///     // detlint: allow(DET4) membership-only set; never iterated.
///
/// on the offending line or in the comment block immediately above it. The
/// reason is mandatory: an allow() with no trailing justification is
/// ignored and the violation still fires.
///
/// The scanner understands line/block comments, string and character
/// literals (raw strings are not supported — don't hide clocks in them).

#include <string>
#include <vector>

namespace detlint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;     // "DET1".."DET7"
  std::string message;  // what matched and which rule it breaks
};

struct RunResult {
  std::vector<Violation> violations;
  int suppressed = 0;    // matches silenced by an active allow()
  int filesScanned = 0;
};

/// True when `path` contains a component naming a deterministic zone
/// (sim, net, calciom, platform, pfs, storage, workload, fault, mpi, io).
/// `analysis/` is deliberately not a zone: it is the reporting layer and
/// may time, hash and print whatever it likes.
[[nodiscard]] bool inDeterministicZone(const std::string& path);

/// True for the one file allowed to touch wall clocks (sim/wall_timer.hpp).
[[nodiscard]] bool isWallClockShim(const std::string& path);

/// True when `path` names a file detlint scans (C++ source/header).
[[nodiscard]] bool isSourceFile(const std::string& path);

/// Lints one file's contents (the path decides zone membership).
[[nodiscard]] RunResult lintFile(const std::string& path,
                                 const std::string& contents);

/// Recursively lints every C++ source under `root`; `root` may also be a
/// single file. Missing paths produce a synthetic violation (rule "IO") so
/// a typo'd CI invocation cannot pass vacuously.
[[nodiscard]] RunResult lintTree(const std::string& root);

/// Merges `part` into `total`.
void merge(RunResult& total, RunResult part);

/// One-line human description of a rule id ("DET3" -> its contract).
[[nodiscard]] std::string describeRule(const std::string& rule);

}  // namespace detlint
